#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace adse {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_THROW(parse_double("abc"), InvariantError);
  EXPECT_THROW(parse_double("1.5x"), InvariantError);
  EXPECT_THROW(parse_double(""), InvariantError);
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
}

TEST(ParseInt, Invalid) {
  EXPECT_THROW(parse_int("4.2"), InvariantError);
  EXPECT_THROW(parse_int("x"), InvariantError);
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Format, Grouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(25078088), "25,078,088");
  EXPECT_EQ(format_grouped(-1234567), "-1,234,567");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("campaign_main", "campaign"));
  EXPECT_FALSE(starts_with("cam", "campaign"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ToLower, Basic) { EXPECT_EQ(to_lower("MiniBude"), "minibude"); }

}  // namespace
}  // namespace adse
