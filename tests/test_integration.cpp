/// \file test_integration.cpp
/// End-to-end tests across module boundaries: the full T1→T4 workflow of the
/// paper's artifact at miniature scale (sample configs → simulate → train a
/// surrogate → introspect), plus cross-module physical sanity checks.

#include <gtest/gtest.h>

#include "analysis/surrogate_eval.hpp"
#include "campaign/campaign.hpp"
#include "config/baselines.hpp"
#include "config/param_space.hpp"
#include "ml/metrics.hpp"
#include "sim/simulation.hpp"

namespace adse {
namespace {

TEST(Integration, MiniatureCampaignToSurrogate) {
  campaign::CampaignSpec spec;
  spec.label = "integration";
  spec.num_configs = 60;
  spec.seed = 1234;
  spec.threads = 2;
  spec.verbose = false;
  const auto result = campaign::run_campaign(spec);

  // Train the paper's model on MiniBude and verify it learns *something*
  // transferable even at this tiny scale: better than predicting the mean.
  const auto eval = analysis::evaluate_surrogate(
      kernels::App::kMiniBude, result.dataset(kernels::App::kMiniBude), 99);
  EXPECT_GT(eval.r2, -1.5);  // 60 rows: generalisation is noise; pipeline must run
  // Training fit is exact for an unconstrained tree.
  const auto train_pred = eval.model.predict_all(eval.train);
  EXPECT_NEAR(ml::mae(eval.train.y, train_pred), 0.0, 1e-6);
  // Importance percentages are a valid distribution.
  double total = 0;
  for (double p : eval.importance.percent) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(Integration, VectorLengthMonotoneForVectorisedCodes) {
  // Cycles must be non-increasing in VL for STREAM/MiniBude on the baseline
  // (bandwidth raised alongside, per the §V-A constraint).
  for (kernels::App app : {kernels::App::kStream, kernels::App::kMiniBude}) {
    std::uint64_t prev = ~0ULL;
    for (int vl : {128, 256, 512, 1024, 2048}) {
      config::CpuConfig c = config::thunderx2_baseline();
      c.core.vector_length_bits = vl;
      while (c.core.load_bandwidth_bytes < vl / 8) c.core.load_bandwidth_bytes *= 2;
      while (c.core.store_bandwidth_bytes < vl / 8) c.core.store_bandwidth_bytes *= 2;
      const auto cycles = sim::simulate_app(c, app).cycles();
      EXPECT_LE(cycles, prev + prev / 50) << kernels::app_name(app) << " VL " << vl;
      prev = cycles;
    }
  }
}

TEST(Integration, RobKneeExists) {
  // The paper's Fig. 7: growing the ROB helps a lot early, then plateaus.
  auto cycles_at = [](int rob) {
    config::CpuConfig c = config::thunderx2_baseline();
    c.core.rob_size = rob;
    return sim::simulate_app(c, kernels::App::kStream).cycles();
  };
  const auto at8 = cycles_at(8);
  const auto at152 = cycles_at(152);
  const auto at512 = cycles_at(512);
  EXPECT_GT(at8, at152 * 2);             // starvation costs a large factor
  EXPECT_LT(at512, at152);               // still some gain...
  EXPECT_GT(at512 * 5, at152 * 4);       // ...but under 25% past the knee
}

TEST(Integration, FpRegisterKneeExists) {
  auto cycles_at = [](int regs) {
    config::CpuConfig c = config::thunderx2_baseline();
    c.core.fp_phys_regs = regs;
    return sim::simulate_app(c, kernels::App::kMiniBude).cycles();
  };
  const auto starved = cycles_at(38);
  const auto knee = cycles_at(144);
  const auto huge = cycles_at(512);
  EXPECT_GT(starved, knee * 2);
  EXPECT_GT(huge * 5, knee * 4);
}

TEST(Integration, L2SizeCliffForStream) {
  auto cycles_at = [](int l2_kib) {
    config::CpuConfig c = config::thunderx2_baseline();
    c.mem.l2_size_kib = l2_kib;
    return sim::simulate_app(c, kernels::App::kStream).cycles();
  };
  // Footprint is 192 KiB: 64/128 KiB L2 spills to RAM, 512 KiB does not.
  EXPECT_GT(cycles_at(64), cycles_at(512) * 5 / 4);
  // TeaLeaf's ~75 KiB footprint sees far less of a cliff.
  auto tealeaf_at = [](int l2_kib) {
    config::CpuConfig c = config::thunderx2_baseline();
    c.mem.l2_size_kib = l2_kib;
    return sim::simulate_app(c, kernels::App::kTeaLeaf).cycles();
  };
  EXPECT_LT(static_cast<double>(tealeaf_at(128)),
            1.15 * static_cast<double>(tealeaf_at(512)));
}

TEST(Integration, MemorySpeedMattersForMemoryBoundCodes) {
  config::CpuConfig fast = config::thunderx2_baseline();
  fast.mem.ram_latency_ns = 60;
  fast.mem.ram_clock_ghz = 3.2;
  config::CpuConfig slow = config::thunderx2_baseline();
  slow.mem.ram_latency_ns = 200;
  slow.mem.ram_clock_ghz = 0.8;
  const auto fast_cycles = sim::simulate_app(fast, kernels::App::kStream).cycles();
  const auto slow_cycles = sim::simulate_app(slow, kernels::App::kStream).cycles();
  EXPECT_GT(slow_cycles, fast_cycles * 3 / 2);
  // Compute-bound MiniBude barely notices.
  const auto bude_fast = sim::simulate_app(fast, kernels::App::kMiniBude).cycles();
  const auto bude_slow = sim::simulate_app(slow, kernels::App::kMiniBude).cycles();
  EXPECT_LT(static_cast<double>(bude_slow), 1.25 * static_cast<double>(bude_fast));
}

TEST(Integration, L1ClockMattersForTeaLeaf) {
  config::CpuConfig fast = config::thunderx2_baseline();
  fast.mem.l1_clock_ghz = 4.0;
  config::CpuConfig slow = config::thunderx2_baseline();
  slow.mem.l1_clock_ghz = 1.0;
  const auto fast_cycles = sim::simulate_app(fast, kernels::App::kTeaLeaf).cycles();
  const auto slow_cycles = sim::simulate_app(slow, kernels::App::kTeaLeaf).cycles();
  EXPECT_GT(slow_cycles * 5, fast_cycles * 6);  // >= 20% slower
}

TEST(Integration, SampledConfigsSimulateWithoutError) {
  // Property sweep: 40 random designs x 4 apps all complete and validate.
  const config::ParameterSpace space;
  Rng rng(0xBEEF);
  for (int i = 0; i < 40; ++i) {
    const config::CpuConfig c = space.sample(rng);
    for (kernels::App app : kernels::all_apps()) {
      EXPECT_NO_THROW({
        const auto result = sim::simulate_app(c, app);
        EXPECT_GT(result.cycles(), 0u);
      }) << "config " << i << " app " << kernels::app_name(app);
    }
  }
}

}  // namespace
}  // namespace adse
