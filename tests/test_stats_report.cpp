#include "sim/stats_report.hpp"

#include <gtest/gtest.h>

#include "config/baselines.hpp"

namespace adse::sim {
namespace {

TEST(StatsReport, RenderContainsEverySection) {
  const RunResult result =
      simulate_app(config::thunderx2_baseline(), kernels::App::kStream);
  const std::string out = render_stats(result);
  EXPECT_NE(out.find("cycles"), std::string::npos);
  EXPECT_NE(out.find("retirement mix"), std::string::npos);
  EXPECT_NE(out.find("stall attribution"), std::string::npos);
  EXPECT_NE(out.find("memory hierarchy"), std::string::npos);
  EXPECT_NE(out.find("LOAD"), std::string::npos);
  EXPECT_NE(out.find("store->load forwards"), std::string::npos);
  EXPECT_NE(out.find("thunderx2"), std::string::npos);
}

TEST(StatsReport, MixOmitsUnusedGroups) {
  // STREAM has no scalar FP divides.
  const RunResult result =
      simulate_app(config::thunderx2_baseline(), kernels::App::kStream);
  const std::string out = render_stats(result);
  EXPECT_EQ(out.find("FP_DIV"), std::string::npos);
}

TEST(StatsReport, SummaryIsOneLine) {
  const RunResult result =
      simulate_app(config::thunderx2_baseline(), kernels::App::kMiniBude);
  const std::string out = summarize(result);
  EXPECT_EQ(out.find('\n'), std::string::npos);
  EXPECT_NE(out.find("minibude"), std::string::npos);
  EXPECT_NE(out.find("IPC"), std::string::npos);
}

TEST(StatsReport, NumbersAreGrouped) {
  const RunResult result =
      simulate_app(config::thunderx2_baseline(), kernels::App::kStream);
  const std::string out = render_stats(result);
  // Cycles are tens of thousands: must contain a comma-grouped number.
  EXPECT_NE(out.find(','), std::string::npos);
}

}  // namespace
}  // namespace adse::sim
