#include "config/param_space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/require.hpp"

namespace adse::config {
namespace {

TEST(ParamSpec, Pow2Values) {
  const ParameterSpace space;
  const auto values = space.spec(ParamId::kVectorLength).values();
  EXPECT_EQ(values, (std::vector<double>{128, 256, 512, 1024, 2048}));
}

TEST(ParamSpec, LinearValuesWithExtraFloor) {
  const ParameterSpace space;
  const auto values = space.spec(ParamId::kGpRegisters).values();
  // Table II: "8 starting from 40", plus the minimum-viable 38.
  EXPECT_DOUBLE_EQ(values.front(), 38.0);
  EXPECT_DOUBLE_EQ(values[1], 40.0);
  EXPECT_DOUBLE_EQ(values[2], 48.0);
  EXPECT_DOUBLE_EQ(values.back(), 512.0);
}

TEST(ParamSpec, RobValuesStep4) {
  const ParameterSpace space;
  const auto values = space.spec(ParamId::kRobSize).values();
  EXPECT_DOUBLE_EQ(values.front(), 8.0);
  EXPECT_DOUBLE_EQ(values[1], 12.0);
  EXPECT_DOUBLE_EQ(values.back(), 512.0);
  EXPECT_EQ(values.size(), 127u);
}

TEST(ParamSpec, RealValuesThrow) {
  const ParameterSpace space;
  EXPECT_THROW(space.spec(ParamId::kL1Clock).values(), InvariantError);
}

TEST(ParamSpec, ContainsMembership) {
  const ParameterSpace space;
  const auto& vl = space.spec(ParamId::kVectorLength);
  EXPECT_TRUE(vl.contains(512));
  EXPECT_FALSE(vl.contains(384));
  const auto& clock = space.spec(ParamId::kL1Clock);
  EXPECT_TRUE(clock.contains(2.2));
  EXPECT_FALSE(clock.contains(0.1));
}

TEST(ParamSpec, SampleHonoursRaisedMinimum) {
  const ParameterSpace space;
  Rng rng(3);
  const auto& bw = space.spec(ParamId::kLoadBandwidth);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(bw.sample(rng, 256.0), 256.0);
  }
}

TEST(ParamSpec, SampleRaisedAboveMaxThrows) {
  const ParameterSpace space;
  Rng rng(3);
  EXPECT_THROW(space.spec(ParamId::kLoadBandwidth).sample(rng, 2048.0),
               InvariantError);
}

TEST(ParameterSpace, HasThirtySpecs) {
  const ParameterSpace space;
  EXPECT_EQ(space.specs().size(), kNumParams);
}

// Property: every sampled configuration is valid (500 draws).
TEST(ParameterSpace, SamplesAreAlwaysValid) {
  const ParameterSpace space;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const CpuConfig c = space.sample(rng);
    EXPECT_NO_THROW(validate(c)) << "draw " << i;
  }
}

// Property: the §V-A dependent bounds hold on every draw.
TEST(ParameterSpace, DependentBoundsHold) {
  const ParameterSpace space;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const CpuConfig c = space.sample(rng);
    EXPECT_GE(c.core.load_bandwidth_bytes, c.core.vector_length_bits / 8);
    EXPECT_GE(c.core.store_bandwidth_bytes, c.core.vector_length_bits / 8);
    EXPECT_GT(c.mem.l2_size_kib, c.mem.l1_size_kib);
    EXPECT_GT(c.mem.l2_latency_cycles, c.mem.l1_latency_cycles);
  }
}

TEST(ParameterSpace, FixedVectorLengthConstraint) {
  const ParameterSpace space;
  Rng rng(11);
  SampleConstraints constraints;
  constraints.fixed_vector_length = 2048;
  for (int i = 0; i < 100; ++i) {
    const CpuConfig c = space.sample(rng, constraints);
    EXPECT_EQ(c.core.vector_length_bits, 2048);
    EXPECT_GE(c.core.load_bandwidth_bytes, 256);
  }
}

TEST(ParameterSpace, FixedVectorLengthMustBeInRange) {
  const ParameterSpace space;
  Rng rng(11);
  SampleConstraints constraints;
  constraints.fixed_vector_length = 384;
  EXPECT_THROW(space.sample(rng, constraints), InvariantError);
}

TEST(ParameterSpace, SamplingIsDeterministicPerSeed) {
  const ParameterSpace space;
  Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(feature_vector(space.sample(a)), feature_vector(space.sample(b)));
  }
}

TEST(ParameterSpace, SamplingCoversVectorLengths) {
  const ParameterSpace space;
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(space.sample(rng).core.vector_length_bits);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of {128..2048}
}

TEST(ParameterSpace, SamplingIsRoughlyUniformOverVl) {
  const ParameterSpace space;
  Rng rng(17);
  std::map<int, int> counts;
  const int n = 2000;
  for (int i = 0; i < n; ++i) counts[space.sample(rng).core.vector_length_bits]++;
  for (const auto& [vl, count] : counts) {
    EXPECT_NEAR(count, n / 5, n / 5 / 2) << "VL " << vl;
  }
}

TEST(ParamSpec, NeighborIsAnAdjacentMember) {
  const ParameterSpace space;
  Rng rng(21);
  const auto& rob = space.spec(ParamId::kRobSize);
  const auto values = rob.values();
  for (int i = 0; i < 200; ++i) {
    const double current = values[rng.index(values.size())];
    const double moved = rob.neighbor(current, rng);
    EXPECT_TRUE(rob.contains(moved));
    EXPECT_NEAR(std::abs(moved - current), rob.step, 1e-9);
  }
}

TEST(ParamSpec, NeighborHonoursRaisedMinimum) {
  const ParameterSpace space;
  Rng rng(22);
  const auto& bw = space.spec(ParamId::kLoadBandwidth);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(bw.neighbor(256.0, rng, 256.0), 256.0);
  }
  // Below the raised bound there is no admissible neighbour pair; the
  // smallest admissible value is returned.
  EXPECT_DOUBLE_EQ(bw.neighbor(16.0, rng, 256.0), 256.0);
}

TEST(ParamSpec, NeighborOfRealParamStaysInRange) {
  const ParameterSpace space;
  Rng rng(23);
  const auto& clock = space.spec(ParamId::kL1Clock);
  double current = 1.0;  // range edge: jitter must clamp
  for (int i = 0; i < 300; ++i) {
    current = clock.neighbor(current, rng);
    EXPECT_TRUE(clock.contains(current));
  }
}

TEST(ParamSpec, RaiseToReturnsSmallestAdmissibleValue) {
  const ParameterSpace space;
  EXPECT_DOUBLE_EQ(space.spec(ParamId::kLoadBandwidth).raise_to(96.0), 128.0);
  EXPECT_DOUBLE_EQ(space.spec(ParamId::kLoadBandwidth).raise_to(128.0), 128.0);
  EXPECT_DOUBLE_EQ(space.spec(ParamId::kRamLatency).raise_to(10.0), 60.0);
  EXPECT_THROW(space.spec(ParamId::kLoadBandwidth).raise_to(2048.0),
               InvariantError);
}

// Property: every mutant of a valid configuration is valid (local search
// must never propose an unsimulatable design).
TEST(ParameterSpace, MutantsAreAlwaysValid) {
  const ParameterSpace space;
  Rng rng(31);
  CpuConfig base = space.sample(rng);
  for (int i = 0; i < 500; ++i) {
    base = space.mutate(base, rng);  // chained: walks far from the seed
    EXPECT_NO_THROW(validate(base)) << "mutation " << i;
  }
}

TEST(ParameterSpace, MutantDiffersFromBase) {
  const ParameterSpace space;
  Rng rng(32);
  for (int i = 0; i < 100; ++i) {
    const CpuConfig base = space.sample(rng);
    const CpuConfig mutant = space.mutate(base, rng);
    EXPECT_NE(feature_vector(base), feature_vector(mutant));
  }
}

TEST(ParameterSpace, MutatePreservesPinnedVectorLength) {
  const ParameterSpace space;
  Rng rng(33);
  SampleConstraints constraints;
  constraints.fixed_vector_length = 1024;
  CpuConfig base = space.sample(rng, constraints);
  for (int i = 0; i < 200; ++i) {
    base = space.mutate(base, rng, 0.3, constraints);
    EXPECT_EQ(base.core.vector_length_bits, 1024);
    EXPECT_GE(base.core.load_bandwidth_bytes, 128);
  }
}

TEST(ParameterSpace, MutateRejectsBadRate) {
  const ParameterSpace space;
  Rng rng(34);
  const CpuConfig base = space.sample(rng);
  EXPECT_THROW(space.mutate(base, rng, 0.0), InvariantError);
  EXPECT_THROW(space.mutate(base, rng, 1.5), InvariantError);
}

// Parameterised property: each discrete spec's samples are members of its
// own value list.
class SpecSampleMembership : public ::testing::TestWithParam<int> {};

TEST_P(SpecSampleMembership, SamplesAreMembers) {
  const ParameterSpace space;
  const auto& spec = space.spec(static_cast<ParamId>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(spec.contains(spec.sample(rng))) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllParams, SpecSampleMembership,
                         ::testing::Range(0, static_cast<int>(kNumParams)),
                         [](const auto& info) {
                           return param_name(static_cast<ParamId>(info.param));
                         });

}  // namespace
}  // namespace adse::config
