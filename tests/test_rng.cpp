#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace adse {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformIntStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng r(7);
  EXPECT_THROW(r.uniform_int(3, 2), InvariantError);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng r(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(r.uniform_int(0, 7))]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 / 5);  // within 20%
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(19);
  double total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += r.uniform01();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformRealBounds) {
  Rng r(23);
  for (int i = 0; i < 5000; ++i) {
    const double v = r.uniform_real(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, IndexBounds) {
  Rng r(29);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(r.index(13), 13u);
}

TEST(Rng, IndexRejectsZero) {
  Rng r(29);
  EXPECT_THROW(r.index(0), InvariantError);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  r.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng r(41);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  // Child stream should not replay the parent's continuation.
  Rng parent2(43);
  (void)parent2.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child.next() == parent.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace adse
