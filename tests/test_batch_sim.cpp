/// \file test_batch_sim.cpp
/// The batched engine's contract: sim::simulate_batch is bit-identical to
/// per-config sim::simulate — every CoreStats and MemStats field, not just
/// cycles — across fuzzed configurations, lane counts, and check modes. Plus
/// the batch-only semantics: mixed-VL batches are rejected, early-finishing
/// lanes retire and compact, and the engine is single-use.

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/require.hpp"
#include "config/baselines.hpp"
#include "config/param_space.hpp"
#include "core/batched_core.hpp"
#include "kernels/workloads.hpp"
#include "sim/batch_sim.hpp"
#include "sim/simulation.hpp"

namespace adse {
namespace {

/// Samples a valid config pinned to `vl` (batches must share a VL).
config::CpuConfig sampled_config(std::uint64_t seed, int vl) {
  const config::ParameterSpace space;
  Rng rng(seed);
  config::SampleConstraints constraints;
  constraints.fixed_vector_length = vl;
  return space.sample(rng, constraints);
}

#define EXPECT_FIELD_EQ(field) \
  EXPECT_EQ(batched.field, scalar.field) << "lane " << lane << " diverges"

void expect_core_identical(const core::CoreStats& batched,
                           const core::CoreStats& scalar, std::size_t lane) {
  EXPECT_FIELD_EQ(cycles);
  EXPECT_FIELD_EQ(retired);
  EXPECT_FIELD_EQ(retired_sve);
  for (int g = 0; g < isa::kNumInstrGroups; ++g) {
    EXPECT_FIELD_EQ(retired_by_group[g]);
  }
  EXPECT_FIELD_EQ(cycles_entered);
  EXPECT_FIELD_EQ(cycles_skipped);
  for (int s = 0; s < core::kNumStages; ++s) {
    EXPECT_FIELD_EQ(stage_active_cycles[s]);
  }
  EXPECT_FIELD_EQ(rs_wakeups);
  EXPECT_FIELD_EQ(stall_fetch_bytes);
  for (int c = 0; c < isa::kNumRegClasses; ++c) {
    EXPECT_FIELD_EQ(stall_no_phys[c]);
    EXPECT_FIELD_EQ(regfile_reads[c]);
    EXPECT_FIELD_EQ(regfile_writes[c]);
  }
  EXPECT_FIELD_EQ(stall_rob_full);
  EXPECT_FIELD_EQ(stall_rs_full);
  EXPECT_FIELD_EQ(stall_lq_full);
  EXPECT_FIELD_EQ(stall_sq_full);
  EXPECT_FIELD_EQ(loads_forwarded);
  EXPECT_FIELD_EQ(loads_sent);
  EXPECT_FIELD_EQ(stores_sent);
  EXPECT_FIELD_EQ(loop_buffer_ops);
  EXPECT_FIELD_EQ(sve_lane_ops);
}

void expect_mem_identical(const mem::MemStats& batched,
                          const mem::MemStats& scalar, std::size_t lane) {
  EXPECT_FIELD_EQ(loads);
  EXPECT_FIELD_EQ(stores);
  EXPECT_FIELD_EQ(line_requests);
  EXPECT_FIELD_EQ(l1_hits);
  EXPECT_FIELD_EQ(l1_misses);
  EXPECT_FIELD_EQ(l2_hits);
  EXPECT_FIELD_EQ(l2_misses);
  EXPECT_FIELD_EQ(l1_reads);
  EXPECT_FIELD_EQ(l1_writes);
  EXPECT_FIELD_EQ(l2_reads);
  EXPECT_FIELD_EQ(l2_writes);
  EXPECT_FIELD_EQ(ram_requests);
  EXPECT_FIELD_EQ(dirty_writebacks);
  EXPECT_FIELD_EQ(prefetch_fills);
  EXPECT_FIELD_EQ(tlb_misses);
  EXPECT_FIELD_EQ(bank_conflicts);
}

#undef EXPECT_FIELD_EQ

void expect_batch_matches_scalar(std::span<const config::CpuConfig> configs,
                                 const isa::Program& trace) {
  const std::vector<sim::RunResult> batched =
      sim::simulate_batch(configs, trace);
  ASSERT_EQ(batched.size(), configs.size());
  for (std::size_t lane = 0; lane < configs.size(); ++lane) {
    const sim::RunResult scalar_run = sim::simulate(configs[lane], trace);
    expect_core_identical(batched[lane].core, scalar_run.core, lane);
    expect_mem_identical(batched[lane].mem, scalar_run.mem, lane);
    EXPECT_EQ(batched[lane].config_name, configs[lane].name);
    EXPECT_EQ(batched[lane].app, trace.name);
  }
}

TEST(BatchSim, BitIdenticalToScalarAcrossFuzzedConfigs) {
  // A spread of VL groups and fuzzed designs; every app shape is covered by
  // the golden-cycles gate, so two contrasting apps suffice here.
  for (const int vl : {128, 512}) {
    std::vector<config::CpuConfig> configs;
    for (std::uint64_t seed : {7u, 21u, 35u, 77u}) {
      configs.push_back(sampled_config(seed * 0x9e3779b97f4a7c15ULL + 1, vl));
    }
    if (vl == 128) configs.push_back(config::thunderx2_baseline());
    for (const auto app : {kernels::App::kStream, kernels::App::kMiniSweep}) {
      const isa::Program trace = kernels::build_app(app, vl);
      expect_batch_matches_scalar(configs, trace);
    }
  }
}

TEST(BatchSim, SingleLaneBatchMatchesScalar) {
  const std::vector<config::CpuConfig> configs{config::thunderx2_baseline()};
  const isa::Program trace = kernels::build_app(
      kernels::App::kTeaLeaf, configs[0].core.vector_length_bits);
  expect_batch_matches_scalar(configs, trace);
}

TEST(BatchSim, MixedVectorLengthBatchRejects) {
  std::vector<config::CpuConfig> configs{sampled_config(3, 128),
                                         sampled_config(4, 512)};
  const isa::Program trace = kernels::build_app(kernels::App::kStream, 128);
  EXPECT_THROW(sim::simulate_batch(configs, trace), InvariantError);
}

TEST(BatchSim, EarlyLaneRetirementCompactsTheBatch) {
  // A deliberately lopsided batch: the baseline against a weak fuzzed design
  // (slow lanes keep draining after fast lanes retire). The scheduler's
  // occupancy accounting must show rounds that ran below full width, and
  // every lane's stats must still be exact.
  std::vector<config::CpuConfig> configs{config::thunderx2_baseline()};
  for (std::uint64_t seed : {5u, 6u, 9u}) {
    configs.push_back(sampled_config(seed, 128));
  }
  const isa::Program trace = kernels::build_app(kernels::App::kMiniBude, 128);

  core::BatchRunInfo info;
  const std::vector<sim::RunResult> batched =
      sim::simulate_batch(configs, trace, &info);
  ASSERT_EQ(batched.size(), configs.size());
  EXPECT_GT(info.windows, 0u);
  EXPECT_LE(info.mean_active_lanes(), static_cast<double>(configs.size()));
  EXPECT_GE(info.mean_active_lanes(), 1.0);

  std::uint64_t min_cycles = batched[0].core.cycles;
  std::uint64_t max_cycles = batched[0].core.cycles;
  for (const sim::RunResult& r : batched) {
    min_cycles = std::min(min_cycles, r.core.cycles);
    max_cycles = std::max(max_cycles, r.core.cycles);
  }
  if (max_cycles - min_cycles >= 2 * core::BatchedCore::kDrainCycles) {
    // The speed gap spans drain quanta, so some rounds must have run with
    // the batch partially retired.
    EXPECT_LT(info.mean_active_lanes(), static_cast<double>(configs.size()));
  }
  for (std::size_t lane = 0; lane < configs.size(); ++lane) {
    const sim::RunResult scalar_run = sim::simulate(configs[lane], trace);
    expect_core_identical(batched[lane].core, scalar_run.core, lane);
  }
}

TEST(BatchSim, InvariantChecksRunInsideBatchedLanes) {
  // ADSE_CHECK=1 turns on the per-cycle structural sweep inside every lane
  // and the cross-component conservation laws per lane; a clean batch must
  // pass, and the counts must not shift under checking.
  std::vector<config::CpuConfig> configs{config::thunderx2_baseline(),
                                         sampled_config(13, 128)};
  const isa::Program trace = kernels::build_app(kernels::App::kStream, 128);
  const std::vector<sim::RunResult> plain = sim::simulate_batch(configs, trace);
  ScopedCheck check(true);
  const std::vector<sim::RunResult> checked =
      sim::simulate_batch(configs, trace);
  for (std::size_t lane = 0; lane < configs.size(); ++lane) {
    expect_core_identical(checked[lane].core, plain[lane].core, lane);
  }
}

TEST(BatchSim, EngineIsSingleUse) {
  const std::vector<config::CpuConfig> configs{config::thunderx2_baseline()};
  const isa::Program trace = kernels::build_app(
      kernels::App::kStream, configs[0].core.vector_length_bits);
  mem::MemoryHierarchy hierarchy(configs[0].mem, config::kCoreClockGhz);
  mem::MemoryHierarchy* ptr = &hierarchy;
  core::BatchedCore engine(configs, {&ptr, 1});
  engine.run(trace);
  EXPECT_THROW(engine.run(trace), InvariantError);
}

}  // namespace
}  // namespace adse
