#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/require.hpp"
#include "eval/fused.hpp"

namespace adse::campaign {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.label = "test";
  spec.num_configs = 12;
  spec.seed = 7;
  spec.threads = 2;
  spec.verbose = false;
  return spec;
}

TEST(Campaign, FeatureNamesMatchParamOrder) {
  const auto names = feature_names();
  ASSERT_EQ(names.size(), config::kNumParams);
  EXPECT_EQ(names.front(), "vector_length_bits");
  EXPECT_EQ(names.back(), "prefetch_distance");
}

TEST(Campaign, CyclesColumnNames) {
  EXPECT_EQ(cycles_column(kernels::App::kStream), "stream_cycles");
  EXPECT_EQ(cycles_column(kernels::App::kMiniSweep), "minisweep_cycles");
}

TEST(Campaign, PowerColumnNames) {
  EXPECT_EQ(energy_column(kernels::App::kStream), "stream_energy_j");
  EXPECT_EQ(energy_column(kernels::App::kMiniBude), "minibude_energy_j");
  EXPECT_EQ(area_column(), "area_mm2");
}

TEST(Campaign, RunProducesConsistentDatasets) {
  const CampaignResult result = run_campaign(tiny_spec());
  EXPECT_EQ(result.table.num_rows(), 12u);
  // 30 features + per-app cycles + per-app energy + area.
  EXPECT_EQ(result.table.num_cols(),
            config::kNumParams +
                2 * static_cast<std::size_t>(kernels::kNumApps) + 1);
  for (double j : result.table.column(energy_column(kernels::App::kStream))) {
    EXPECT_GT(j, 0.0);
  }
  for (double a : result.table.column(area_column())) EXPECT_GT(a, 0.0);
  for (kernels::App app : kernels::all_apps()) {
    const auto& ds = result.dataset(app);
    EXPECT_EQ(ds.num_rows(), 12u);
    EXPECT_EQ(ds.num_features(), config::kNumParams);
    for (double y : ds.y) EXPECT_GT(y, 0.0);
    ds.check();
  }
}

TEST(Campaign, RowsAreValidConfigurations) {
  const CampaignResult result = run_campaign(tiny_spec());
  for (const auto& row : result.table.rows) {
    std::array<double, config::kNumParams> features{};
    std::copy_n(row.begin(), config::kNumParams, features.begin());
    EXPECT_NO_THROW(config::validate(config::config_from_features(features)));
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  CampaignSpec one = tiny_spec();
  one.threads = 1;
  CampaignSpec four = tiny_spec();
  four.threads = 4;
  const CampaignResult a = run_campaign(one);
  const CampaignResult b = run_campaign(four);
  EXPECT_EQ(a.table.rows, b.table.rows);
}

TEST(Campaign, SeedChangesData) {
  CampaignSpec other = tiny_spec();
  other.seed = 8;
  EXPECT_NE(run_campaign(tiny_spec()).table.rows,
            run_campaign(other).table.rows);
}

TEST(Campaign, VlPinIsRespected) {
  CampaignSpec spec = tiny_spec();
  spec.fixed_vector_length = 512;
  const CampaignResult result = run_campaign(spec);
  const auto vl = result.table.column("vector_length_bits");
  for (double v : vl) EXPECT_DOUBLE_EQ(v, 512.0);
}

TEST(Campaign, FusedThresholdZeroIsBitIdenticalToAllSim) {
  // The acceptance gate for the routed path: with the routing threshold at 0
  // the fused campaign takes the pure pass-through (no model reads, no
  // observations) and its table is bit-identical to the all-sim run.
  eval::FusedOptions options;
  options.threshold = 0.0;
  eval::FusedModel model(options);
  CampaignSpec fused_spec = tiny_spec();
  fused_spec.fused = &model;
  const CampaignResult plain = run_campaign(tiny_spec());
  const CampaignResult routed = run_campaign(fused_spec);
  EXPECT_EQ(plain.table.rows, routed.table.rows);
  EXPECT_EQ(model.refits(), 0u);
  for (kernels::App app : kernels::all_apps()) {
    EXPECT_EQ(model.observations(app), 0u);
  }
  // Routed tables still live in their own cache namespace, even at
  // threshold 0 — an all-sim caller must never load one by key collision.
  EXPECT_NE(cache_path(fused_spec).find("_fused"), std::string::npos);
  EXPECT_EQ(cache_path(tiny_spec()).find("_fused"), std::string::npos);
}

TEST(Campaign, ResultFromTableRoundTrips) {
  const CampaignResult original = run_campaign(tiny_spec());
  CsvTable copy = original.table;
  const CampaignResult back = result_from_table(std::move(copy));
  for (kernels::App app : kernels::all_apps()) {
    EXPECT_EQ(back.dataset(app).y, original.dataset(app).y);
    EXPECT_EQ(back.dataset(app).x, original.dataset(app).x);
  }
}

TEST(Campaign, ResultFromTableRejectsBadSchema) {
  CsvTable bad;
  bad.columns = {"wrong"};
  EXPECT_THROW(result_from_table(std::move(bad)), InvariantError);
}

TEST(Campaign, CachePathEncodesSpec) {
  CampaignSpec spec = tiny_spec();
  spec.fixed_vector_length = 128;
  const std::string path = cache_path(spec);
  EXPECT_NE(path.find("test"), std::string::npos);
  EXPECT_NE(path.find("n12"), std::string::npos);
  EXPECT_NE(path.find("s7"), std::string::npos);
  EXPECT_NE(path.find("vl128"), std::string::npos);
}

TEST(Campaign, LoadOrRunUsesCache) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_campaign_test";
  std::filesystem::remove_all(dir);
  setenv("ADSE_CACHE_DIR", dir.string().c_str(), 1);

  CampaignSpec spec = tiny_spec();
  spec.num_configs = 10;
  const CampaignResult first = load_or_run(spec);
  EXPECT_TRUE(file_exists(cache_path(spec)));
  const CampaignResult second = load_or_run(spec);  // served from cache
  EXPECT_EQ(first.table.rows, second.table.rows);

  unsetenv("ADSE_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Campaign, StaleCacheIsDroppedAndRebuilt) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_stale_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  setenv("ADSE_CACHE_DIR", dir.string().c_str(), 1);

  CampaignSpec spec = tiny_spec();
  spec.num_configs = 8;
  // A cache written by "an older build": wrong schema entirely.
  write_csv(cache_path(spec), CsvTable{{"old_col_a", "old_col_b"},
                                       {{1.0, 2.0}, {3.0, 4.0}}});
  const CampaignResult result = load_or_run(spec);  // must not throw
  EXPECT_EQ(result.table.num_rows(), 8u);
  // The bad file was replaced by a loadable one.
  const CampaignResult again = load_or_run(spec);
  EXPECT_EQ(again.table.rows, result.table.rows);

  unsetenv("ADSE_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Campaign, TruncatedCacheIsDroppedAndRebuilt) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_trunc_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  setenv("ADSE_CACHE_DIR", dir.string().c_str(), 1);

  CampaignSpec spec = tiny_spec();
  spec.num_configs = 8;
  const CampaignResult full = load_or_run(spec);
  // Simulate a killed writer from before atomic publication: valid header,
  // fewer rows than the spec demands.
  CsvTable truncated = full.table;
  truncated.rows.resize(3);
  write_csv(cache_path(spec), truncated);
  const CampaignResult recovered = load_or_run(spec);
  EXPECT_EQ(recovered.table.rows, full.table.rows);

  unsetenv("ADSE_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Campaign, CachePublicationLeavesNoTempFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_tmp_test";
  std::filesystem::remove_all(dir);
  setenv("ADSE_CACHE_DIR", dir.string().c_str(), 1);

  CampaignSpec spec = tiny_spec();
  spec.num_configs = 6;
  load_or_run(spec);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".csv") << entry.path();
  }
  EXPECT_EQ(files, 1u);

  unsetenv("ADSE_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Campaign, DefaultSpecsHonourEnv) {
  setenv("ADSE_CONFIGS", "123", 1);
  setenv("ADSE_SEED", "9", 1);
  const CampaignSpec spec = main_campaign_spec();
  EXPECT_EQ(spec.num_configs, 123);
  EXPECT_EQ(spec.seed, 9u);
  unsetenv("ADSE_CONFIGS");
  unsetenv("ADSE_SEED");

  const CampaignSpec pinned = constrained_campaign_spec(2048);
  EXPECT_EQ(pinned.fixed_vector_length, 2048);
  EXPECT_NE(pinned.seed, main_campaign_spec().seed);
}

}  // namespace
}  // namespace adse::campaign
