#include "core/register_files.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "config/baselines.hpp"

namespace adse::core {
namespace {

config::CoreParams params_with_gp(int gp) {
  config::CoreParams p = config::thunderx2_baseline().core;
  p.gp_phys_regs = gp;
  return p;
}

TEST(RegisterFiles, InitialMappingsAreIdentityAndReady) {
  RegisterFiles rf(config::thunderx2_baseline().core);
  for (int a = 0; a < config::kArchGpRegs; ++a) {
    EXPECT_EQ(rf.mapping(isa::RegClass::kGp, a), a);
    EXPECT_TRUE(rf.ready(isa::RegClass::kGp, a));
  }
  EXPECT_EQ(rf.mapping(isa::RegClass::kCond, 0), 0);
}

TEST(RegisterFiles, FreeCountIsPhysMinusArch) {
  RegisterFiles rf(params_with_gp(40));
  EXPECT_EQ(rf.free_count(isa::RegClass::kGp), 40 - config::kArchGpRegs);
}

TEST(RegisterFiles, AllocateUpdatesMappingAndClearsReady) {
  RegisterFiles rf(config::thunderx2_baseline().core);
  const auto alloc = rf.allocate(isa::RegClass::kGp, 5);
  EXPECT_EQ(alloc.prev, 5);  // initial identity mapping
  EXPECT_NE(alloc.phys, 5);
  EXPECT_EQ(rf.mapping(isa::RegClass::kGp, 5), alloc.phys);
  EXPECT_FALSE(rf.ready(isa::RegClass::kGp, alloc.phys));
  rf.set_ready(isa::RegClass::kGp, alloc.phys);
  EXPECT_TRUE(rf.ready(isa::RegClass::kGp, alloc.phys));
}

TEST(RegisterFiles, ExhaustionAndRelease) {
  RegisterFiles rf(params_with_gp(38));  // 6 rename registers
  std::vector<RegisterFiles::Alloc> allocs;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rf.can_allocate(isa::RegClass::kGp));
    allocs.push_back(rf.allocate(isa::RegClass::kGp, i % 32));
  }
  EXPECT_FALSE(rf.can_allocate(isa::RegClass::kGp));
  EXPECT_THROW(rf.allocate(isa::RegClass::kGp, 0), InvariantError);
  // Committing an op frees the *previous* mapping.
  rf.release(isa::RegClass::kGp, allocs[0].prev);
  EXPECT_TRUE(rf.can_allocate(isa::RegClass::kGp));
  EXPECT_EQ(rf.free_count(isa::RegClass::kGp), 1);
}

TEST(RegisterFiles, ClassesAreIndependent) {
  config::CoreParams p = config::thunderx2_baseline().core;
  p.pred_phys_regs = 24;  // 7 free predicate rename regs
  RegisterFiles rf(p);
  for (int i = 0; i < 7; ++i) rf.allocate(isa::RegClass::kPred, 0);
  EXPECT_FALSE(rf.can_allocate(isa::RegClass::kPred));
  EXPECT_TRUE(rf.can_allocate(isa::RegClass::kGp));
  EXPECT_TRUE(rf.can_allocate(isa::RegClass::kFp));
  EXPECT_TRUE(rf.can_allocate(isa::RegClass::kCond));
}

TEST(RegisterFiles, SequentialWritesChainPrevious) {
  RegisterFiles rf(config::thunderx2_baseline().core);
  const auto first = rf.allocate(isa::RegClass::kFp, 3);
  const auto second = rf.allocate(isa::RegClass::kFp, 3);
  EXPECT_EQ(second.prev, first.phys);
  EXPECT_EQ(rf.mapping(isa::RegClass::kFp, 3), second.phys);
}

TEST(RegisterFiles, CondClassWorks) {
  config::CoreParams p = config::thunderx2_baseline().core;
  p.cond_phys_regs = 8;  // 7 rename regs
  RegisterFiles rf(p);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(rf.can_allocate(isa::RegClass::kCond));
    rf.allocate(isa::RegClass::kCond, 0);
  }
  EXPECT_FALSE(rf.can_allocate(isa::RegClass::kCond));
}

TEST(RegisterFiles, OutOfRangeArchThrows) {
  RegisterFiles rf(config::thunderx2_baseline().core);
  EXPECT_THROW(rf.mapping(isa::RegClass::kGp, config::kArchGpRegs),
               InvariantError);
  EXPECT_THROW(rf.allocate(isa::RegClass::kCond, 1), InvariantError);
}

TEST(RegisterFiles, WaiterTokensDeliveredOnceOnSetReady) {
  RegisterFiles rf(config::thunderx2_baseline().core);
  const auto alloc = rf.allocate(isa::RegClass::kFp, 2);
  rf.add_waiter(isa::RegClass::kFp, alloc.phys, 7);
  rf.add_waiter(isa::RegClass::kFp, alloc.phys, 9);
  rf.add_waiter(isa::RegClass::kFp, alloc.phys, 9);  // dup source operand
  std::vector<std::uint32_t> woken;
  rf.set_ready(isa::RegClass::kFp, alloc.phys, woken);
  EXPECT_EQ(woken, (std::vector<std::uint32_t>{7, 9, 9}));
  EXPECT_TRUE(rf.ready(isa::RegClass::kFp, alloc.phys));
  // The list is consumed: re-allocating the register starts clean.
  woken.clear();
  rf.release(isa::RegClass::kFp, alloc.prev);
  rf.set_ready(isa::RegClass::kFp, alloc.phys, woken);
  EXPECT_TRUE(woken.empty());
}

TEST(RegisterFiles, WaiterOnReadyRegisterThrows) {
  RegisterFiles rf(config::thunderx2_baseline().core);
  // Initial mappings are ready; polling replaced by wakeups only for
  // not-ready registers, so registering on a ready one is a logic error.
  EXPECT_THROW(rf.add_waiter(isa::RegClass::kGp, 0, 1), InvariantError);
}

TEST(RegisterFiles, PlainSetReadyRejectsPendingWaiters) {
  RegisterFiles rf(config::thunderx2_baseline().core);
  const auto alloc = rf.allocate(isa::RegClass::kGp, 1);
  rf.add_waiter(isa::RegClass::kGp, alloc.phys, 3);
  // The waiter-less overload would silently drop the token.
  EXPECT_THROW(rf.set_ready(isa::RegClass::kGp, alloc.phys), InvariantError);
}

TEST(RegisterFiles, ReleaseRecyclesRegisters) {
  RegisterFiles rf(params_with_gp(40));  // 8 rename regs
  // Sustained alloc/release cycles must never exhaust.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rf.can_allocate(isa::RegClass::kGp));
    const auto alloc = rf.allocate(isa::RegClass::kGp, i % 32);
    rf.release(isa::RegClass::kGp, alloc.prev);
  }
}

}  // namespace
}  // namespace adse::core
