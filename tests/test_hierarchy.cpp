#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "config/baselines.hpp"

namespace adse::mem {
namespace {

config::MemParams base_params() {
  config::MemParams p;  // defaults are a valid TX2-ish memory system
  p.prefetch_distance = 0;  // most tests want no prefetch noise
  return p;
}

TEST(Hierarchy, L1HitLatencyMatchesClockConversion) {
  config::MemParams p = base_params();
  p.l1_latency_cycles = 4;
  p.l1_clock_ghz = 2.5;
  MemoryHierarchy m(p, 2.5);
  m.access(0x1000, 8, false, 0);  // cold miss fills the line
  const auto hit = m.access(0x1000, 8, false, 1000);
  EXPECT_EQ(hit.ready_cycle, 1004u);  // 4 L1 cycles at matched clocks
  EXPECT_EQ(hit.worst_level, ServedBy::kL1);
}

TEST(Hierarchy, SlowerL1ClockStretchesLatency) {
  config::MemParams p = base_params();
  p.l1_latency_cycles = 4;
  p.l1_clock_ghz = 1.25;  // half the core clock
  MemoryHierarchy m(p, 2.5);
  m.access(0x1000, 8, false, 0);
  const auto hit = m.access(0x1000, 8, false, 1000);
  EXPECT_EQ(hit.ready_cycle, 1008u);  // latency doubles in core cycles
}

TEST(Hierarchy, MissLevelsAreOrdered) {
  config::MemParams p = base_params();
  MemoryHierarchy m(p, 2.5);
  const auto ram = m.access(0x2000, 8, false, 0);
  EXPECT_EQ(ram.worst_level, ServedBy::kRam);
  // Second access hits L1 (just filled).
  const auto l1 = m.access(0x2000, 8, false, 5000);
  EXPECT_EQ(l1.worst_level, ServedBy::kL1);
  EXPECT_GT(ram.ready_cycle, l1.ready_cycle - 5000);
}

TEST(Hierarchy, RamLatencyScalesWithNs) {
  config::MemParams fast = base_params();
  fast.ram_latency_ns = 60;
  config::MemParams slow = base_params();
  slow.ram_latency_ns = 180;
  MemoryHierarchy mf(fast, 2.5);
  MemoryHierarchy ms(slow, 2.5);
  const auto f = mf.access(0x9000, 8, false, 0);
  const auto s = ms.access(0x9000, 8, false, 0);
  EXPECT_NEAR(static_cast<double>(s.ready_cycle - f.ready_cycle),
              (180 - 60) * 2.5, 2.0);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  config::MemParams p = base_params();
  p.l1_size_kib = 4;
  p.l1_assoc = 1;
  p.l2_size_kib = 64;
  MemoryHierarchy m(p, 2.5);
  m.access(0x0000, 8, false, 0);
  // Evict 0x0000 from the direct-mapped 4 KiB L1 (alias at +4 KiB).
  m.access(0x1000, 8, false, 100);
  const auto l2 = m.access(0x0000, 8, false, 10000);
  EXPECT_EQ(l2.worst_level, ServedBy::kL2);
  EXPECT_EQ(m.stats().l2_hits, 1u);
}

TEST(Hierarchy, MultiLineAccessTouchesEveryLine) {
  config::MemParams p = base_params();
  MemoryHierarchy m(p, 2.5);
  // 256-byte vector access spanning 4 lines of 64 B.
  m.access(0x4000, 256, false, 0);
  EXPECT_EQ(m.stats().line_requests, 4u);
  EXPECT_EQ(m.stats().ram_requests, 4u);
  // All four lines now resident.
  const auto hit = m.access(0x4000 + 192, 8, false, 5000);
  EXPECT_EQ(hit.worst_level, ServedBy::kL1);
}

TEST(Hierarchy, UnalignedAccessSplitsAcrossLines) {
  MemoryHierarchy m(base_params(), 2.5);
  m.access(0x4000 + 60, 8, false, 0);  // straddles a 64 B boundary
  EXPECT_EQ(m.stats().line_requests, 2u);
}

TEST(Hierarchy, InfiniteBanksOverlapLineRequests) {
  // With infinite banks (campaign default), a 4-line vector access completes
  // much sooner than 4 serialised RAM latencies.
  MemoryHierarchy m(base_params(), 2.5);
  const auto result = m.access(0x8000, 256, false, 0);
  const double one_ram = 95.0 * 2.5;
  EXPECT_LT(result.ready_cycle, 2 * one_ram);
}

TEST(Hierarchy, WiderLineMeansFewerRequests) {
  config::MemParams wide = base_params();
  wide.cache_line_bytes = 256;
  MemoryHierarchy m(wide, 2.5);
  m.access(0xa000, 256, false, 0);
  EXPECT_EQ(m.stats().line_requests, 1u);
}

TEST(Hierarchy, StoreMissFillsAndMarksDirtyForWriteback) {
  config::MemParams p = base_params();
  p.l1_size_kib = 4;
  p.l1_assoc = 1;
  MemoryHierarchy m(p, 2.5);
  m.access(0x0000, 8, true, 0);        // store miss -> dirty L1 line
  m.access(0x1000, 8, false, 100);     // evicts dirty line into L2
  m.access(0x2000, 8, false, 200);     // evicts again
  EXPECT_EQ(m.stats().stores, 1u);
  EXPECT_EQ(m.stats().loads, 2u);
}

TEST(Hierarchy, StatsCountHitsAndMisses) {
  MemoryHierarchy m(base_params(), 2.5);
  m.access(0x1000, 8, false, 0);
  m.access(0x1000, 8, false, 1000);
  m.access(0x1008, 8, false, 2000);
  EXPECT_EQ(m.stats().l1_misses, 1u);
  EXPECT_EQ(m.stats().l1_hits, 2u);
  EXPECT_EQ(m.stats().l1_hit_rate(), 2.0 / 3.0);
}

TEST(Hierarchy, PrefetchStagesUpcomingLinesInL2) {
  config::MemParams p = base_params();
  p.prefetch_distance = 4;
  MemoryHierarchy m(p, 2.5);
  m.access(0x10000, 8, false, 0);  // RAM miss triggers next-line prefetch
  EXPECT_EQ(m.stats().prefetch_fills, 4u);
  // The next line is L2-staged (campaign prefetcher fills L2, not L1).
  const auto next = m.access(0x10040, 8, false, 100000);
  EXPECT_EQ(next.worst_level, ServedBy::kL2);
}

TEST(Hierarchy, PrefetchedLineWaitsForArrival) {
  config::MemParams p = base_params();
  p.prefetch_distance = 4;
  MemoryHierarchy m(p, 2.5);
  m.access(0x10000, 8, false, 0);
  // Immediately demanding the prefetched next line cannot beat DRAM latency.
  const auto next = m.access(0x10040, 8, false, 1);
  EXPECT_GT(next.ready_cycle, 95.0 * 2.5 * 0.8);
}

TEST(Hierarchy, RamClockControlsBandwidth) {
  config::MemParams slow = base_params();
  slow.ram_clock_ghz = 0.8;
  config::MemParams fast = base_params();
  fast.ram_clock_ghz = 3.2;
  MemoryHierarchy ms(slow, 2.5);
  MemoryHierarchy mfast(fast, 2.5);
  // Stream 64 lines back to back; the slow DRAM must finish later.
  std::uint64_t slow_done = 0, fast_done = 0;
  for (int i = 0; i < 64; ++i) {
    slow_done = ms.access(0x20000 + i * 64u, 8, false, 0).ready_cycle;
    fast_done = mfast.access(0x20000 + i * 64u, 8, false, 0).ready_cycle;
  }
  EXPECT_GT(slow_done, fast_done + 100);
}

TEST(Hierarchy, ResetClearsState) {
  MemoryHierarchy m(base_params(), 2.5);
  m.access(0x1000, 8, false, 0);
  m.reset();
  EXPECT_EQ(m.stats().loads, 0u);
  const auto again = m.access(0x1000, 8, false, 0);
  EXPECT_EQ(again.worst_level, ServedBy::kRam);  // cold again
}

TEST(Hierarchy, ZeroSizeAccessThrows) {
  MemoryHierarchy m(base_params(), 2.5);
  EXPECT_THROW(m.access(0x1000, 0, false, 0), InvariantError);
}

// --- fidelity options (hardware-proxy features) ----------------------------

TEST(HierarchyFidelity, TlbWalksChargeOnNewPages) {
  FidelityOptions f;
  f.model_tlb = true;
  f.tlb_entries = 4;
  MemoryHierarchy m(base_params(), 2.5, f);
  m.access(0x100000, 8, false, 0);
  EXPECT_EQ(m.stats().tlb_misses, 1u);
  m.access(0x100008, 8, false, 1000);  // same page
  EXPECT_EQ(m.stats().tlb_misses, 1u);
  m.access(0x200000, 8, false, 2000);  // new page
  EXPECT_EQ(m.stats().tlb_misses, 2u);
}

TEST(HierarchyFidelity, BankConflictsOnAliasedStride) {
  FidelityOptions f;
  f.finite_banks = 4;
  MemoryHierarchy m(base_params(), 2.5, f);
  // Alternate between two lines 4 lines apart (same bank of 4), forcing a
  // line switch in the bank on every access.
  for (int i = 0; i < 10; ++i) {
    m.access(0x40000, 8, false, static_cast<std::uint64_t>(i));
    m.access(0x40000 + 4 * 64, 8, false, static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(m.stats().bank_conflicts, 0u);
}

TEST(HierarchyFidelity, NoBankConflictsWhenDisjoint) {
  FidelityOptions f;
  f.finite_banks = 4;
  MemoryHierarchy m(base_params(), 2.5, f);
  for (int i = 0; i < 10; ++i) {
    m.access(0x40000, 8, false, static_cast<std::uint64_t>(10 * i));
    m.access(0x40000 + 64, 8, false, static_cast<std::uint64_t>(10 * i));
  }
  EXPECT_EQ(m.stats().bank_conflicts, 0u);
}

TEST(HierarchyFidelity, DramScalesSlowAccesses) {
  FidelityOptions scaled;
  scaled.dram_latency_scale = 2.0;
  MemoryHierarchy base(base_params(), 2.5);
  MemoryHierarchy slow(base_params(), 2.5, scaled);
  const auto b = base.access(0x9000, 8, false, 0);
  const auto s = slow.access(0x9000, 8, false, 0);
  EXPECT_GT(s.ready_cycle, b.ready_cycle + 100);
}

TEST(HierarchyFidelity, StreamPrefetcherCoversSequentialScan) {
  config::MemParams p = base_params();
  p.prefetch_distance = 4;
  FidelityOptions f;
  f.stream_prefetcher = true;
  f.prefetch_into_l1 = true;
  f.prefetch_on_l2_hits = true;
  f.prefetch_boost_l2 = 8;
  MemoryHierarchy with(p, 2.5, f);
  MemoryHierarchy without(p, 2.5);
  auto scan = [](MemoryHierarchy& m) {
    std::uint64_t t = 0;
    for (int i = 0; i < 512; ++i) {
      t = m.access(0x100000 + static_cast<std::uint64_t>(i) * 64, 8, false, t)
              .ready_cycle;
    }
    return t;
  };
  EXPECT_LT(scan(with), scan(without));
  EXPECT_GT(with.stats().prefetch_fills, 100u);
}

}  // namespace
}  // namespace adse::mem
