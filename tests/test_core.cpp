#include "core/core.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "config/baselines.hpp"
#include "kernels/kernel_builder.hpp"
#include "kernels/workloads.hpp"

namespace adse::core {
namespace {

using kernels::fp;
using kernels::gp;
using kernels::KernelBuilder;
using kernels::pred;
using isa::InstrGroup;

CoreStats run(const config::CpuConfig& cfg, const isa::Program& program,
              const CoreFidelity& fidelity = {}) {
  mem::MemoryHierarchy hierarchy(cfg.mem, config::kCoreClockGhz);
  Core core(cfg, hierarchy, fidelity);
  return core.run(program);
}

/// A wide-open configuration where only the aspect under test binds.
config::CpuConfig roomy() {
  config::CpuConfig c = config::thunderx2_baseline();
  c.name = "roomy";
  c.core.frontend_width = 16;
  c.core.commit_width = 16;
  c.core.fetch_block_bytes = 256;
  c.core.rob_size = 512;
  c.core.gp_phys_regs = 512;
  c.core.fp_phys_regs = 512;
  c.core.pred_phys_regs = 512;
  c.core.cond_phys_regs = 512;
  c.core.load_queue_size = 256;
  c.core.store_queue_size = 256;
  c.core.lsq_completion_width = 8;
  c.core.mem_requests_per_cycle = 8;
  c.core.mem_loads_per_cycle = 8;
  c.core.mem_stores_per_cycle = 8;
  c.core.load_bandwidth_bytes = 1024;
  c.core.store_bandwidth_bytes = 1024;
  return c;
}

isa::Program independent_ints(int n) {
  KernelBuilder b("ints");
  for (int i = 0; i < n; ++i) b.op(InstrGroup::kInt, gp(i % 16));
  return b.take();
}

isa::Program serial_fp_chain(int n) {
  KernelBuilder b("chain");
  b.op(InstrGroup::kFp, fp(0));
  for (int i = 0; i < n; ++i) b.op(InstrGroup::kFp, fp(0), fp(0));
  return b.take();
}

TEST(Core, RetiresEveryOp) {
  const auto program = independent_ints(1000);
  const CoreStats stats = run(roomy(), program);
  EXPECT_EQ(stats.retired, 1000u);
  EXPECT_EQ(stats.retired_by_group[static_cast<int>(InstrGroup::kInt)], 1000u);
}

TEST(Core, EmptyProgramThrows) {
  isa::Program empty;
  empty.name = "empty";
  mem::MemoryHierarchy hierarchy(roomy().mem, config::kCoreClockGhz);
  Core core(roomy(), hierarchy);
  EXPECT_THROW(core.run(empty), InvariantError);
}

TEST(Core, IndependentIntsSaturateDispatch) {
  // 3 mixed ports bind INT throughput below the dispatch width of 4.
  const auto program = independent_ints(3000);
  const CoreStats stats = run(roomy(), program);
  EXPECT_GT(stats.ipc(), 2.5);
  EXPECT_LE(stats.ipc(), 3.1);  // 3 INT-capable ports
}

TEST(Core, SerialChainBoundByLatency) {
  const int n = 500;
  const CoreStats stats = run(roomy(), serial_fp_chain(n));
  // Each link waits 4 cycles for its predecessor.
  EXPECT_GE(stats.cycles, static_cast<std::uint64_t>(n) * 4);
  EXPECT_LE(stats.cycles, static_cast<std::uint64_t>(n) * 4 + 100);
}

TEST(Core, FrontendWidthThrottles) {
  config::CpuConfig narrow = roomy();
  narrow.core.frontend_width = 1;
  const auto program = independent_ints(2000);
  const CoreStats wide_stats = run(roomy(), program);
  const CoreStats narrow_stats = run(narrow, program);
  EXPECT_GT(narrow_stats.cycles, wide_stats.cycles * 2);
  EXPECT_LE(narrow_stats.ipc(), 1.01);
}

TEST(Core, CommitWidthThrottles) {
  config::CpuConfig narrow = roomy();
  narrow.core.commit_width = 1;
  const auto program = independent_ints(2000);
  const CoreStats stats = run(narrow, program);
  EXPECT_LE(stats.ipc(), 1.01);
}

TEST(Core, FetchBlockThrottles) {
  config::CpuConfig tiny = roomy();
  tiny.core.fetch_block_bytes = 4;  // one instruction per cycle
  const auto program = independent_ints(2000);
  const CoreStats stats = run(tiny, program);
  EXPECT_LE(stats.ipc(), 1.01);
  EXPECT_GT(stats.stall_fetch_bytes, 100u);
}

TEST(Core, LoopBufferBypassesFetchBlock) {
  // Same 1-byte/cycle fetch block, but the code is a small loop: after the
  // first iteration it streams from the loop buffer at full frontend width.
  auto loop_program = [] {
    KernelBuilder b("loop");
    b.begin_loop();
    for (int iter = 0; iter < 400; ++iter) {
      b.begin_iteration();
      for (int i = 0; i < 4; ++i) b.op(InstrGroup::kInt, gp(i + 1));
      b.end_iteration();
    }
    b.end_loop();
    return b.take();
  }();

  config::CpuConfig tiny = roomy();
  tiny.core.fetch_block_bytes = 4;
  tiny.core.loop_buffer_size = 16;
  const CoreStats with_lb = run(tiny, loop_program);

  config::CpuConfig no_lb = tiny;
  no_lb.core.loop_buffer_size = 1;  // body of 4 does not fit
  const CoreStats without_lb = run(no_lb, loop_program);

  EXPECT_LT(with_lb.cycles * 2, without_lb.cycles);
  EXPECT_GT(with_lb.loop_buffer_ops, 1000u);
  EXPECT_EQ(without_lb.loop_buffer_ops, 0u);
}

TEST(Core, RobSizeLimitsMemoryParallelism) {
  // Independent loads with long RAM latency: a bigger ROB overlaps more.
  auto loads = [] {
    KernelBuilder b("loads");
    for (int i = 0; i < 400; ++i) {
      b.load(fp(i % 8), 0x100000 + static_cast<std::uint64_t>(i) * 4096, 8,
             gp(1));
    }
    return b.take();
  }();
  config::CpuConfig small = roomy();
  // No prefetcher: otherwise useless next-line prefetches saturate DRAM
  // bandwidth and mask the latency-parallelism effect under test.
  small.mem.prefetch_distance = 0;
  small.core.rob_size = 8;
  config::CpuConfig big = roomy();
  big.mem.prefetch_distance = 0;
  const CoreStats small_stats = run(small, loads);
  const CoreStats big_stats = run(big, loads);
  EXPECT_GT(small_stats.cycles, big_stats.cycles * 3);
}

TEST(Core, RegisterPressureStalls) {
  config::CpuConfig starved = roomy();
  starved.core.fp_phys_regs = 38;  // 6 rename regs
  const auto program = serial_fp_chain(200);
  const CoreStats stats = run(starved, program);
  EXPECT_GT(stats.stall_no_phys[static_cast<int>(isa::RegClass::kFp)], 0u);
}

TEST(Core, StoreLoadForwardingObserved) {
  KernelBuilder b("fwd");
  b.op(InstrGroup::kFp, fp(1));
  b.store(0x5000, 8, fp(1), gp(1));
  b.load(fp(2), 0x5000, 8, gp(1));  // must see the store
  b.op(InstrGroup::kFp, fp(3), fp(2));
  const auto program = b.take();
  const CoreStats stats = run(roomy(), program);
  EXPECT_EQ(stats.loads_forwarded, 1u);
  EXPECT_EQ(stats.loads_sent, 0u);  // forwarded, never went to memory
  EXPECT_EQ(stats.stores_sent, 1u);
}

TEST(Core, ForwardLatencyFidelitySlowsChains) {
  KernelBuilder b("fwdchain");
  for (int i = 0; i < 100; ++i) {
    b.op(InstrGroup::kInt, gp(2), gp(2));
    b.store(0x5000 + static_cast<std::uint64_t>(i) * 8, 8, gp(2), gp(1));
    b.load(gp(2), 0x5000 + static_cast<std::uint64_t>(i) * 8, 8, gp(1));
  }
  const auto program = b.take();
  CoreFidelity slow;
  slow.forward_latency = 12;
  const CoreStats fast_stats = run(roomy(), program);
  const CoreStats slow_stats = run(roomy(), program, slow);
  EXPECT_GT(slow_stats.cycles, fast_stats.cycles + 500);
}

TEST(Core, LoadWaitsForOverlappingStoreData) {
  // A load overlapping a store whose data comes from a long FP chain cannot
  // complete before the chain does.
  KernelBuilder b("dep");
  b.op(InstrGroup::kFp, fp(0));
  for (int i = 0; i < 50; ++i) b.op(InstrGroup::kFp, fp(0), fp(0));
  b.store(0x7000, 8, fp(0), gp(1));
  b.load(fp(1), 0x7000, 8, gp(1));
  const auto program = b.take();
  const CoreStats stats = run(roomy(), program);
  EXPECT_GE(stats.cycles, 200u);  // 50 links x 4 cycles
}

TEST(Core, MispredictFidelityAddsCycles) {
  KernelBuilder b("branches");
  for (int i = 0; i < 3000; ++i) {
    b.cmp(gp(1), gp(2));
    b.branch();
    b.op(InstrGroup::kInt, gp(3));
  }
  const auto program = b.take();
  CoreFidelity flushy;
  flushy.mispredict_interval = 10;
  flushy.mispredict_penalty = 20;
  // Narrow frontend: fetch is the bottleneck, so flushes genuinely stall.
  config::CpuConfig cfg = roomy();
  cfg.core.frontend_width = 4;
  const CoreStats base = run(cfg, program);
  const CoreStats flushed = run(cfg, program, flushy);
  EXPECT_GT(flushed.cycles, base.cycles + 1000);
}

TEST(Core, LoopExitMispredictFidelity) {
  KernelBuilder b("exits");
  for (int loop = 0; loop < 100; ++loop) {
    b.begin_loop();
    for (int iter = 0; iter < 5; ++iter) {
      b.begin_iteration();
      b.op(InstrGroup::kInt, gp(1), gp(1));
      b.branch();
      b.end_iteration();
    }
    b.end_loop();
  }
  const auto program = b.take();
  CoreFidelity exits;
  exits.mispredict_loop_exits = true;
  exits.mispredict_penalty = 20;
  config::CpuConfig cfg = roomy();
  cfg.core.frontend_width = 2;  // keep fetch on the critical path
  const CoreStats base = run(cfg, program);
  const CoreStats flushed = run(cfg, program, exits);
  // 100 loop exits x ~20 cycles of flush, partially overlapped.
  EXPECT_GT(flushed.cycles, base.cycles + 500);
}

TEST(Core, MemRequestCapsThrottleLoads) {
  auto loads = [] {
    KernelBuilder b("l1loads");
    // Touch one line, then hammer it (all L1 hits after the first).
    for (int i = 0; i < 2000; ++i) b.load(fp(i % 8), 0x6000, 8, gp(1));
    return b.take();
  }();
  config::CpuConfig capped = roomy();
  capped.core.mem_loads_per_cycle = 1;
  capped.core.mem_requests_per_cycle = 1;
  const CoreStats capped_stats = run(capped, loads);
  const CoreStats open_stats = run(roomy(), loads);
  EXPECT_GT(capped_stats.cycles, open_stats.cycles * 3 / 2);
  EXPECT_GE(capped_stats.cycles, 2000u);  // at most 1 load sent per cycle
}

TEST(Core, LoadBandwidthThrottlesWideVectors) {
  auto vec_loads = [] {
    KernelBuilder b("wide");
    for (int i = 0; i < 500; ++i) {
      b.load(fp(i % 8), 0x8000 + static_cast<std::uint64_t>(i % 4) * 256, 256,
             gp(1));  // 2048-bit loads, L1-resident set
    }
    return b.take();
  }();
  config::CpuConfig wide = roomy();
  wide.core.vector_length_bits = 2048;
  config::CpuConfig narrow = wide;
  narrow.core.load_bandwidth_bytes = 256;  // exactly one vector per cycle
  wide.core.load_bandwidth_bytes = 1024;
  const CoreStats narrow_stats = run(narrow, vec_loads);
  const CoreStats wide_stats = run(wide, vec_loads);
  EXPECT_GE(narrow_stats.cycles, wide_stats.cycles);
  EXPECT_GE(narrow_stats.cycles, 500u);
}

TEST(Core, ImpossibleIpcNeverHappens) {
  const CoreStats stats = run(roomy(), independent_ints(5000));
  EXPECT_LE(stats.ipc(), config::kDispatchWidth);
}

TEST(Core, EventSkipObservability) {
  // Independent loads with long RAM latency: the core is idle between memory
  // responses, so the event wheel must fast-forward a large share of cycles —
  // and the accounting must decompose the run exactly.
  KernelBuilder b("skippy");
  for (int i = 0; i < 200; ++i) {
    b.load(fp(i % 8), 0x100000 + static_cast<std::uint64_t>(i) * 4096, 8,
           gp(1));
  }
  config::CpuConfig cfg = roomy();
  cfg.mem.prefetch_distance = 0;
  cfg.core.rob_size = 8;  // little overlap: plenty of pure waiting
  const CoreStats stats = run(cfg, b.take());
  EXPECT_EQ(stats.cycles_entered + stats.cycles_skipped, stats.cycles);
  EXPECT_GT(stats.cycles_skipped, stats.cycles / 4);
  // Stage attribution: every stage saw work, and no stage can have been
  // active on more cycles than the loop entered.
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_GT(stats.stage_active_cycles[s], 0u) << stage_name(static_cast<Stage>(s));
    EXPECT_LE(stats.stage_active_cycles[s], stats.cycles_entered)
        << stage_name(static_cast<Stage>(s));
  }
}

TEST(Core, WakeupsCountDependentOperands) {
  // A pure serial chain wakes exactly one consumer operand per link; the
  // first op (no sources) and the chain structure bound the count tightly.
  const int n = 300;
  const CoreStats stats = run(roomy(), serial_fp_chain(n));
  EXPECT_GE(stats.rs_wakeups, static_cast<std::uint64_t>(n) - 1);
  // Each link has one pending source; allow dispatch-time-ready slack only.
  EXPECT_LE(stats.rs_wakeups, static_cast<std::uint64_t>(n) + 1);
}

TEST(Core, ComputeBoundSkipsLittle) {
  // Back-to-back independent INTs keep every cycle busy: the event wheel
  // must not skip actively advancing cycles.
  const CoreStats stats = run(roomy(), independent_ints(2000));
  EXPECT_EQ(stats.cycles_entered + stats.cycles_skipped, stats.cycles);
  EXPECT_LT(stats.cycles_skipped, stats.cycles / 10);
}

TEST(Core, DeterministicAcrossRuns) {
  const auto program = kernels::build_app(kernels::App::kTeaLeaf, 128);
  const CoreStats a = run(config::thunderx2_baseline(), program);
  const CoreStats b = run(config::thunderx2_baseline(), program);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retired, b.retired);
}

// Property: granting more of any single resource never increases cycles on a
// deterministic trace (per-app, per-resource parameterised sweep).
struct MonotonicCase {
  const char* label;
  void (*shrink)(config::CpuConfig&);
};

class ResourceMonotonic : public ::testing::TestWithParam<MonotonicCase> {};

TEST_P(ResourceMonotonic, MoreResourceNeverSlower) {
  const auto program = kernels::build_app(kernels::App::kMiniBude, 128);
  const config::CpuConfig big = config::thunderx2_baseline();
  config::CpuConfig small = big;
  GetParam().shrink(small);
  const CoreStats big_stats = run(big, program);
  const CoreStats small_stats = run(small, program);
  // Allow a tiny slack: scheduling anomalies of a few cycles are possible.
  EXPECT_GE(small_stats.cycles + 16, big_stats.cycles) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Resources, ResourceMonotonic,
    ::testing::Values(
        MonotonicCase{"rob", [](config::CpuConfig& c) { c.core.rob_size = 16; }},
        MonotonicCase{"fp_regs", [](config::CpuConfig& c) { c.core.fp_phys_regs = 40; }},
        MonotonicCase{"gp_regs", [](config::CpuConfig& c) { c.core.gp_phys_regs = 38; }},
        MonotonicCase{"pred_regs", [](config::CpuConfig& c) { c.core.pred_phys_regs = 24; }},
        MonotonicCase{"cond_regs", [](config::CpuConfig& c) { c.core.cond_phys_regs = 8; }},
        MonotonicCase{"frontend", [](config::CpuConfig& c) { c.core.frontend_width = 1; }},
        MonotonicCase{"commit", [](config::CpuConfig& c) { c.core.commit_width = 1; }},
        MonotonicCase{"fetch_block", [](config::CpuConfig& c) { c.core.fetch_block_bytes = 8; }},
        MonotonicCase{"load_queue", [](config::CpuConfig& c) { c.core.load_queue_size = 4; }},
        MonotonicCase{"store_queue", [](config::CpuConfig& c) { c.core.store_queue_size = 4; }},
        MonotonicCase{"lsq_width", [](config::CpuConfig& c) { c.core.lsq_completion_width = 1; }},
        MonotonicCase{"mem_requests", [](config::CpuConfig& c) { c.core.mem_requests_per_cycle = 1; }},
        MonotonicCase{"loop_buffer", [](config::CpuConfig& c) { c.core.loop_buffer_size = 1; }}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace adse::core
