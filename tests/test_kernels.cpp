#include "kernels/workloads.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "kernels/kernel_builder.hpp"

namespace adse::kernels {
namespace {

TEST(AppNames, AllFourPresentAndOrdered) {
  EXPECT_EQ(all_apps().size(), static_cast<std::size_t>(kNumApps));
  EXPECT_EQ(app_name(App::kStream), "STREAM");
  EXPECT_EQ(app_name(App::kMiniBude), "MiniBude");
  EXPECT_EQ(app_name(App::kTeaLeaf), "TeaLeaf");
  EXPECT_EQ(app_name(App::kMiniSweep), "MiniSweep");
  EXPECT_EQ(app_slug(App::kMiniSweep), "minisweep");
}

TEST(KernelBuilder, LoopMarkersStampBodyAndFirstIteration) {
  KernelBuilder b("t");
  b.begin_loop();
  for (int iter = 0; iter < 3; ++iter) {
    b.begin_iteration();
    b.op(isa::InstrGroup::kInt, gp(1));
    b.op(isa::InstrGroup::kInt, gp(2));
    b.branch();
    b.end_iteration();
  }
  b.end_loop();
  const isa::Program p = b.take();
  ASSERT_EQ(p.ops.size(), 9u);
  for (const auto& op : p.ops) EXPECT_EQ(op.loop_body_size, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(p.ops[i].flags & isa::kFlagFirstLoopIteration);
  }
  for (std::size_t i = 3; i < 9; ++i) {
    EXPECT_FALSE(p.ops[i].flags & isa::kFlagFirstLoopIteration);
  }
  // The exit branch of the final iteration is flagged.
  EXPECT_TRUE(p.ops[8].flags & isa::kFlagLoopExit);
  EXPECT_FALSE(p.ops[5].flags & isa::kFlagLoopExit);
}

TEST(KernelBuilder, StraightLineCodeUnstamped) {
  KernelBuilder b("t");
  b.op(isa::InstrGroup::kInt, gp(1));
  const isa::Program p = b.take();
  EXPECT_EQ(p.ops[0].loop_body_size, 0);
}

TEST(KernelBuilder, TakeInsideLoopThrows) {
  KernelBuilder b("t");
  b.begin_loop();
  EXPECT_THROW(b.take(), InvariantError);
}

TEST(KernelBuilder, EmptyIterationThrows) {
  KernelBuilder b("t");
  b.begin_loop();
  b.begin_iteration();
  EXPECT_THROW(b.end_iteration(), InvariantError);
}

TEST(KernelBuilder, WhileloEmitsPredicateAndCondWrites) {
  KernelBuilder b("t");
  b.whilelo(pred(0), gp(1), gp(2));
  const isa::Program p = b.take();
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_EQ(p.ops[0].dest.cls, isa::RegClass::kPred);
  EXPECT_EQ(p.ops[1].dest.cls, isa::RegClass::kCond);
}

class EveryAppAtEveryVl
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EveryAppAtEveryVl, BuildsAndHasSaneShape) {
  const App app = static_cast<App>(std::get<0>(GetParam()));
  const int vl = std::get<1>(GetParam());
  const isa::Program p = build_app(app, vl);
  EXPECT_FALSE(p.ops.empty());
  EXPECT_GT(p.footprint_bytes, 0u);
  const isa::TraceStats stats = isa::compute_stats(p);
  EXPECT_EQ(stats.total, p.ops.size());
  EXPECT_GT(stats.memory_ops, 0u);
  // Each memory op's size never exceeds one full vector.
  for (const auto& op : p.ops) {
    if (op.is_memory()) {
      EXPECT_LE(op.mem_size_bytes, static_cast<std::uint32_t>(vl / 8));
      EXPECT_GT(op.mem_size_bytes, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EveryAppAtEveryVl,
    ::testing::Combine(::testing::Range(0, kNumApps),
                       ::testing::Values(128, 256, 512, 1024, 2048)),
    [](const auto& info) {
      return app_slug(static_cast<App>(std::get<0>(info.param))) + "_vl" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Stream, TraceShrinksWithVectorLength) {
  const auto vl128 = build_stream(StreamInput{}, 128);
  const auto vl2048 = build_stream(StreamInput{}, 2048);
  EXPECT_GT(vl128.size(), vl2048.size() * 10);
}

TEST(Stream, HighSveFraction) {
  const auto stats = isa::compute_stats(build_stream(StreamInput{}, 128));
  EXPECT_GT(stats.sve_fraction(), 0.5);
}

TEST(Stream, FootprintMatchesInput) {
  StreamInput input;
  input.array_elements = 1000;
  const auto p = build_stream(input, 128);
  EXPECT_EQ(p.footprint_bytes, 3u * 1000 * 8);
}

TEST(Stream, RepetitionsScaleTrace) {
  StreamInput one;
  StreamInput two;
  two.repetitions = 2;
  EXPECT_NEAR(static_cast<double>(build_stream(two, 128).size()),
              2.0 * static_cast<double>(build_stream(one, 128).size()),
              10.0);
}

TEST(Stream, InvalidInputThrows) {
  StreamInput bad;
  bad.array_elements = 0;
  EXPECT_THROW(build_stream(bad, 128), InvariantError);
}

TEST(MiniBude, HighSveFractionAndVlScaling) {
  const auto stats128 = isa::compute_stats(build_minibude(BudeInput{}, 128));
  EXPECT_GT(stats128.sve_fraction(), 0.5);
  EXPECT_GT(build_minibude(BudeInput{}, 128).size(),
            build_minibude(BudeInput{}, 2048).size() * 8);
}

TEST(MiniBude, ComputeBoundMix) {
  const auto stats = isa::compute_stats(build_minibude(BudeInput{}, 128));
  const auto vec = stats.by_group[static_cast<int>(isa::InstrGroup::kVec)];
  EXPECT_GT(vec, stats.memory_ops);  // more compute than memory
}

TEST(TeaLeaf, PoorlyVectorised) {
  const auto stats = isa::compute_stats(build_tealeaf(TeaLeafInput{}, 128));
  EXPECT_LT(stats.sve_fraction(), 0.15);
  EXPECT_GT(stats.sve_fraction(), 0.0);
}

TEST(TeaLeaf, TraceAlmostVlInvariant) {
  const auto vl128 = build_tealeaf(TeaLeafInput{}, 128);
  const auto vl2048 = build_tealeaf(TeaLeafInput{}, 2048);
  // Only the one vectorised axpy shrinks; bulk is scalar.
  EXPECT_LT(static_cast<double>(vl128.size() - vl2048.size()),
            0.15 * static_cast<double>(vl128.size()));
}

TEST(TeaLeaf, MemoryHeavyMix) {
  const auto stats = isa::compute_stats(build_tealeaf(TeaLeafInput{}, 128));
  EXPECT_GT(static_cast<double>(stats.memory_ops) /
                static_cast<double>(stats.total),
            0.3);
}

TEST(MiniSweep, PoorlyVectorised) {
  const auto stats = isa::compute_stats(build_minisweep(SweepInput{}, 128));
  EXPECT_LT(stats.sve_fraction(), 0.1);
}

TEST(MiniSweep, WavefrontStoresFeedLoads) {
  const auto p = build_minisweep(SweepInput{}, 128);
  // Every interior cell's loads hit addresses previously stored: count
  // load addresses that appeared as earlier store addresses.
  std::set<std::uint64_t> stored;
  std::size_t dependent_loads = 0;
  for (const auto& op : p.ops) {
    if (op.group == isa::InstrGroup::kStore) stored.insert(op.mem_addr);
    if (op.group == isa::InstrGroup::kLoad && stored.count(op.mem_addr)) {
      dependent_loads++;
    }
  }
  EXPECT_GT(dependent_loads, 1000u);
}

TEST(MiniSweep, OctantsScaleTrace) {
  SweepInput one;
  one.octants = 1;
  SweepInput two;
  two.octants = 2;
  EXPECT_NEAR(static_cast<double>(build_minisweep(two, 128).size()),
              2.0 * static_cast<double>(build_minisweep(one, 128).size()),
              20.0);
}

TEST(Workloads, VectorOpCountsScaleInverselyWithVl) {
  // The vectorised work is fixed; doubling VL must halve the vector µops.
  // STREAM is fully vector-strip-mined, so the halving is exact; MiniBude
  // carries a little per-pose scalar scaffolding, so allow 2% drift.
  const auto s128 = isa::compute_stats(build_app(App::kStream, 128));
  const auto s256 = isa::compute_stats(build_app(App::kStream, 256));
  const auto vec = [](const isa::TraceStats& s) {
    return s.by_group[static_cast<int>(isa::InstrGroup::kVec)];
  };
  const auto loads = [](const isa::TraceStats& s) {
    return s.by_group[static_cast<int>(isa::InstrGroup::kLoad)];
  };
  EXPECT_EQ(vec(s128), 2 * vec(s256));
  EXPECT_EQ(s128.sve_ops, 2 * s256.sve_ops);
  // One extra scalar-ish bookkeeping load survives per trace.
  EXPECT_NEAR(static_cast<double>(loads(s128)),
              2.0 * static_cast<double>(loads(s256)), 2.0);

  const auto b128 = isa::compute_stats(build_app(App::kMiniBude, 128));
  const auto b256 = isa::compute_stats(build_app(App::kMiniBude, 256));
  EXPECT_NEAR(static_cast<double>(vec(b128)) / static_cast<double>(vec(b256)),
              2.0, 0.04);

  // The scalar apps barely move: TeaLeaf's single axpy vectorises, the rest
  // of both traces is VL-invariant scalar code.
  const auto t128 = isa::compute_stats(build_app(App::kTeaLeaf, 128));
  const auto t256 = isa::compute_stats(build_app(App::kTeaLeaf, 256));
  EXPECT_EQ(vec(t128), 2 * vec(t256) - 1);  // odd trip count rounds up
  EXPECT_LT(t128.total - t256.total, t128.total / 10);
}

TEST(Workloads, OpKindMixMatchesPinnedFingerprint) {
  // The exact per-group µop mix at VL=128 is part of the model's contract:
  // the paper's Fig. 1 characterisation, the golden-cycle tests and the
  // check oracle all assume these traces. Any intentional kernel change
  // must re-pin these counts (and the golden cycle counts) deliberately.
  struct Fingerprint {
    App app;
    std::uint64_t total, ints, fp, fp_div, vec, pred, load, store, branch, sve;
  };
  const Fingerprint expected[] = {
      {App::kStream, 118787, 16386, 0, 0, 12288, 32768, 24577, 16384, 16384,
       86016},
      {App::kMiniBude, 37405, 1873, 0, 0, 23508, 3328, 6968, 64, 1664, 33556},
      {App::kTeaLeaf, 56337, 6499, 17345, 2, 723, 1444, 18772, 5054, 6498,
       4333},
      {App::kMiniSweep, 51975, 4739, 20482, 0, 2, 1024, 16512, 4608, 4608,
       1538},
  };
  for (const Fingerprint& f : expected) {
    const auto stats = isa::compute_stats(build_app(f.app, 128));
    const auto g = [&stats](isa::InstrGroup group) {
      return stats.by_group[static_cast<int>(group)];
    };
    EXPECT_EQ(stats.total, f.total) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kInt), f.ints) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kIntMul), 0u) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kFp), f.fp) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kFpDiv), f.fp_div) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kVec), f.vec) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kPred), f.pred) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kLoad), f.load) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kStore), f.store) << app_name(f.app);
    EXPECT_EQ(g(isa::InstrGroup::kBranch), f.branch) << app_name(f.app);
    EXPECT_EQ(stats.sve_ops, f.sve) << app_name(f.app);
  }
}

TEST(Workloads, DefaultTraceSizesAreCampaignScale) {
  for (App app : all_apps()) {
    const auto size = build_app(app, 128).size();
    EXPECT_GT(size, 10'000u) << app_name(app);
    EXPECT_LT(size, 200'000u) << app_name(app);
  }
}

TEST(Workloads, TracesAreDeterministic) {
  const auto a = build_app(App::kMiniSweep, 256);
  const auto b = build_app(App::kMiniSweep, 256);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ops[i].mem_addr, b.ops[i].mem_addr);
    EXPECT_EQ(static_cast<int>(a.ops[i].group), static_cast<int>(b.ops[i].group));
  }
}

}  // namespace
}  // namespace adse::kernels
