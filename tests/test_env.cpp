#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/require.hpp"

namespace adse {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* name : {"ADSE_TEST_VAR", "ADSE_CONFIGS",
                             "ADSE_CONFIGS_CONSTRAINED", "ADSE_THREADS",
                             "ADSE_SEED", "ADSE_CACHE_DIR", "ADSE_LOG_LEVEL",
                             "ADSE_TRACE_FILE", "ADSE_BATCH_K",
                             "ADSE_FUSED_THRESHOLD", "ADSE_FUSED_PROBE_EVERY",
                             "ADSE_SERVE_SOCKET", "ADSE_SERVE_WORKERS",
                             "ADSE_CORES"}) {
      unsetenv(name);
    }
  }
};

TEST_F(EnvTest, StringFallback) {
  EXPECT_EQ(env_string("ADSE_TEST_VAR", "fallback"), "fallback");
  setenv("ADSE_TEST_VAR", "value", 1);
  EXPECT_EQ(env_string("ADSE_TEST_VAR", "fallback"), "value");
  setenv("ADSE_TEST_VAR", "", 1);  // empty counts as unset
  EXPECT_EQ(env_string("ADSE_TEST_VAR", "fallback"), "fallback");
}

TEST_F(EnvTest, IntFallbackAndParse) {
  EXPECT_EQ(env_int("ADSE_TEST_VAR", 7), 7);
  setenv("ADSE_TEST_VAR", "42", 1);
  EXPECT_EQ(env_int("ADSE_TEST_VAR", 7), 42);
  setenv("ADSE_TEST_VAR", "xyz", 1);
  EXPECT_THROW(env_int("ADSE_TEST_VAR", 7), InvariantError);
}

TEST_F(EnvTest, CampaignKnobDefaults) {
  EXPECT_EQ(main_campaign_configs(), 1500);
  EXPECT_EQ(constrained_campaign_configs(), 500);
  EXPECT_EQ(campaign_seed(), 42u);
  EXPECT_GE(num_threads(), 1);
  EXPECT_EQ(cache_dir(), "./adse_cache");
}

TEST_F(EnvTest, CampaignKnobOverrides) {
  setenv("ADSE_CONFIGS", "77", 1);
  setenv("ADSE_SEED", "5", 1);
  setenv("ADSE_CACHE_DIR", "/tmp/elsewhere", 1);
  EXPECT_EQ(main_campaign_configs(), 77);
  EXPECT_EQ(campaign_seed(), 5u);
  EXPECT_EQ(cache_dir(), "/tmp/elsewhere");
}

TEST_F(EnvTest, ObservabilityKnobs) {
  EXPECT_EQ(log_level_name(), "info");
  EXPECT_EQ(trace_file(), "");
  setenv("ADSE_LOG_LEVEL", "warn", 1);
  setenv("ADSE_TRACE_FILE", "/tmp/trace.json", 1);
  EXPECT_EQ(log_level_name(), "warn");
  EXPECT_EQ(trace_file(), "/tmp/trace.json");
}

TEST_F(EnvTest, BatchKnob) {
  EXPECT_EQ(batch_k(), 8);  // default batch width
  setenv("ADSE_BATCH_K", "16", 1);
  EXPECT_EQ(batch_k(), 16);
  setenv("ADSE_BATCH_K", "1", 1);  // <= 1 disables batched dispatch
  EXPECT_EQ(batch_k(), 1);
  setenv("ADSE_BATCH_K", "2048", 1);  // sanity cap
  EXPECT_THROW(batch_k(), InvariantError);
}

TEST_F(EnvTest, DoubleFallbackAndParse) {
  EXPECT_DOUBLE_EQ(env_double("ADSE_TEST_VAR", 1.5), 1.5);
  setenv("ADSE_TEST_VAR", "0.125", 1);
  EXPECT_DOUBLE_EQ(env_double("ADSE_TEST_VAR", 1.5), 0.125);
  setenv("ADSE_TEST_VAR", "not-a-number", 1);
  EXPECT_THROW(env_double("ADSE_TEST_VAR", 1.5), InvariantError);
  setenv("ADSE_TEST_VAR", "1.5abc", 1);  // trailing junk is rejected too
  EXPECT_THROW(env_double("ADSE_TEST_VAR", 1.5), InvariantError);
}

TEST_F(EnvTest, FusedRoutingKnobs) {
  EXPECT_DOUBLE_EQ(fused_threshold(), 1.0);
  EXPECT_EQ(fused_probe_every(), 64);
  setenv("ADSE_FUSED_THRESHOLD", "0", 1);  // 0 = route nothing (all-sim)
  setenv("ADSE_FUSED_PROBE_EVERY", "0", 1);  // 0 = probing disabled
  EXPECT_DOUBLE_EQ(fused_threshold(), 0.0);
  EXPECT_EQ(fused_probe_every(), 0);
  setenv("ADSE_FUSED_THRESHOLD", "-0.1", 1);
  EXPECT_THROW(fused_threshold(), InvariantError);
  setenv("ADSE_FUSED_PROBE_EVERY", "-1", 1);
  EXPECT_THROW(fused_probe_every(), InvariantError);
}

TEST_F(EnvTest, ServeKnobs) {
  EXPECT_EQ(serve_socket_path(), "./adse_cache/eval.sock");  // under cache dir
  EXPECT_EQ(serve_workers(), 0);  // 0 = inherit ADSE_THREADS
  setenv("ADSE_CACHE_DIR", "/tmp/elsewhere", 1);
  EXPECT_EQ(serve_socket_path(), "/tmp/elsewhere/eval.sock");
  setenv("ADSE_SERVE_SOCKET", "/tmp/custom.sock", 1);
  setenv("ADSE_SERVE_WORKERS", "6", 1);
  EXPECT_EQ(serve_socket_path(), "/tmp/custom.sock");
  EXPECT_EQ(serve_workers(), 6);
  setenv("ADSE_SERVE_WORKERS", "-1", 1);
  EXPECT_THROW(serve_workers(), InvariantError);
}

TEST_F(EnvTest, MulticoreCoresKnob) {
  EXPECT_EQ(mc_cores(), 8);  // default tile count
  setenv("ADSE_CORES", "4", 1);
  EXPECT_EQ(mc_cores(), 4);
  setenv("ADSE_CORES", "16", 1);
  EXPECT_EQ(mc_cores(), 16);
  setenv("ADSE_CORES", "1", 1);  // multicore means >= 2
  EXPECT_THROW(mc_cores(), InvariantError);
  setenv("ADSE_CORES", "6", 1);  // power of two only
  EXPECT_THROW(mc_cores(), InvariantError);
  setenv("ADSE_CORES", "32", 1);  // sharer vector is 32 bits, cap at 16
  EXPECT_THROW(mc_cores(), InvariantError);
}

TEST_F(EnvTest, TooSmallCampaignRejected) {
  setenv("ADSE_CONFIGS", "3", 1);
  EXPECT_THROW(main_campaign_configs(), InvariantError);
  setenv("ADSE_THREADS", "0", 1);
  EXPECT_THROW(num_threads(), InvariantError);
}

}  // namespace
}  // namespace adse
