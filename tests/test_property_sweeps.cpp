/// \file test_property_sweeps.cpp
/// Cross-cutting invariants, swept over randomly sampled designs and all
/// four applications — the properties that must hold for *every* point of
/// the design space, not just the baselines the other tests pin.

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "check/repro.hpp"
#include "common/check.hpp"
#include "config/baselines.hpp"
#include "config/param_space.hpp"
#include "eval/service.hpp"
#include "sim/hardware_proxy.hpp"
#include "sim/simulation.hpp"

namespace adse {
namespace {

config::CpuConfig sampled_config(std::uint64_t seed) {
  const config::ParameterSpace space;
  Rng rng(seed);
  return space.sample(rng);
}

class PerAppSweep : public ::testing::TestWithParam<int> {
 protected:
  kernels::App app() const { return static_cast<kernels::App>(GetParam()); }
};

TEST_P(PerAppSweep, EveryOpRetiresOnRandomDesigns) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const auto cfg = sampled_config(seed);
    const isa::Program trace =
        kernels::build_app(app(), cfg.core.vector_length_bits);
    const auto result = sim::simulate(cfg, trace);
    EXPECT_EQ(result.core.retired, trace.ops.size());
  }
}

TEST_P(PerAppSweep, RetiredGroupCountsMatchTrace) {
  const auto cfg = config::thunderx2_baseline();
  const isa::Program trace =
      kernels::build_app(app(), cfg.core.vector_length_bits);
  const auto stats = isa::compute_stats(trace);
  const auto result = sim::simulate(cfg, trace);
  for (int g = 0; g < isa::kNumInstrGroups; ++g) {
    EXPECT_EQ(result.core.retired_by_group[g], stats.by_group[g])
        << isa::group_name(static_cast<isa::InstrGroup>(g));
  }
  EXPECT_EQ(result.core.retired_sve, stats.sve_ops);
}

TEST_P(PerAppSweep, MemoryTrafficConservation) {
  // Loads sent + forwards == trace loads; stores sent == trace stores.
  const auto cfg = config::thunderx2_baseline();
  const isa::Program trace =
      kernels::build_app(app(), cfg.core.vector_length_bits);
  const auto stats = isa::compute_stats(trace);
  const auto result = sim::simulate(cfg, trace);
  const auto trace_loads =
      stats.by_group[static_cast<int>(isa::InstrGroup::kLoad)];
  const auto trace_stores =
      stats.by_group[static_cast<int>(isa::InstrGroup::kStore)];
  EXPECT_EQ(result.core.loads_sent + result.core.loads_forwarded, trace_loads);
  EXPECT_EQ(result.core.stores_sent, trace_stores);
  EXPECT_EQ(result.mem.loads, result.core.loads_sent);
  EXPECT_EQ(result.mem.stores, result.core.stores_sent);
}

TEST_P(PerAppSweep, CacheAccountingBalances) {
  const auto cfg = config::thunderx2_baseline();
  const auto result = sim::simulate_app(cfg, app());
  // Every line request is either an L1 hit or a miss...
  EXPECT_EQ(result.mem.l1_hits + result.mem.l1_misses,
            result.mem.line_requests);
  // ...and every miss is served by L2 or RAM (demand RAM requests only;
  // prefetch fills add extra RAM requests, hence >=).
  EXPECT_GE(result.mem.l2_hits + result.mem.ram_requests,
            result.mem.l1_misses);
}

TEST_P(PerAppSweep, ProxyAndSimulatorRetireIdentically) {
  const auto cfg = config::thunderx2_baseline();
  const isa::Program trace =
      kernels::build_app(app(), cfg.core.vector_length_bits);
  const auto sim_result = sim::simulate(cfg, trace);
  const auto hw_result = sim::simulate_hardware(cfg, trace);
  EXPECT_EQ(sim_result.core.retired, hw_result.core.retired);
  EXPECT_EQ(sim_result.core.retired_sve, hw_result.core.retired_sve);
}

TEST_P(PerAppSweep, WorstCaseDesignStillCompletes) {
  const auto result = sim::simulate_app(config::minimal_viable(), app());
  EXPECT_GT(result.core.cycles, 0u);
  EXPECT_LE(result.core.ipc(), 1.0 + 1e-9);  // 1-wide everything
}

TEST_P(PerAppSweep, TraceStatsSveMatchesRuntime) {
  // Fig. 1's measurement can be computed statically or at retirement; both
  // must agree exactly (every µop retires exactly once).
  for (int vl : {128, 1024}) {
    config::CpuConfig cfg = config::thunderx2_baseline();
    cfg.core.vector_length_bits = vl;
    while (cfg.core.load_bandwidth_bytes < vl / 8) {
      cfg.core.load_bandwidth_bytes *= 2;
    }
    while (cfg.core.store_bandwidth_bytes < vl / 8) {
      cfg.core.store_bandwidth_bytes *= 2;
    }
    const isa::Program trace = kernels::build_app(app(), vl);
    const auto result = sim::simulate(cfg, trace);
    EXPECT_DOUBLE_EQ(result.core.sve_fraction(),
                     isa::compute_stats(trace).sve_fraction());
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerAppSweep,
                         ::testing::Range(0, kernels::kNumApps),
                         [](const auto& info) {
                           return kernels::app_slug(
                               static_cast<kernels::App>(info.param));
                         });

// ---- monotonicity sweeps (adse::check chains with the invariant layer) ----
// Raising a capacity resource must never cost more than the monotonicity
// slack on a fixed trace. Chains run with the prefetcher off — with it on,
// extra in-flight loads legitimately contend with prefetch fills for RAM
// bandwidth (see src/check/fuzzer.hpp).

config::CpuConfig chain_base() {
  return check::with_param(config::thunderx2_baseline(),
                           config::ParamId::kPrefetchDistance, 0.0);
}

void expect_monotone(const check::ChainResult& chain) {
  for (const std::string& error : chain.errors) EXPECT_EQ(error, "");
  const int regression = chain.first_regression();
  EXPECT_EQ(regression, -1)
      << config::param_name(chain.param) << " = "
      << chain.values[static_cast<std::size_t>(regression)] << " took "
      << chain.cycles[static_cast<std::size_t>(regression)] << " cycles";
}

TEST(MonotonicitySweep, RobSizeOnStream) {
  ScopedCheck on(true);
  eval::EvalService service;  // hermetic (no persistent store)
  expect_monotone(check::run_chain(service, chain_base(),
                                   config::ParamId::kRobSize,
                                   {8, 16, 48, 96, 180, 320, 512},
                                   kernels::App::kStream));
}

TEST(MonotonicitySweep, FpRegistersOnStream) {
  // From the minimum viable 38 (just 6 rename registers) upward.
  ScopedCheck on(true);
  eval::EvalService service;
  expect_monotone(check::run_chain(service, chain_base(),
                                   config::ParamId::kFpRegisters,
                                   {38, 48, 64, 128, 256, 512},
                                   kernels::App::kStream));
}

TEST(MonotonicitySweep, VectorLengthOnStream) {
  // Longer vectors retire the same work in fewer µops; with the load/store
  // paths wide enough for a full 2048-bit vector, cycles must not grow.
  // (VL changes the trace itself, so this is not a fixed-trace chain — it
  // checks the work-scaling property instead.)
  ScopedCheck on(true);
  eval::EvalService service;
  config::CpuConfig base = chain_base();
  base.core.load_bandwidth_bytes = 256;
  base.core.store_bandwidth_bytes = 256;
  expect_monotone(check::run_chain(service, base,
                                   config::ParamId::kVectorLength,
                                   {128, 256, 512, 1024, 2048},
                                   kernels::App::kStream));
}

TEST(PropertySweep, SameSeedSameCyclesAcrossProcessesWouldHold) {
  // In-process determinism across repeated construction (the cross-process
  // guarantee rests on the same code path).
  const auto cfg = sampled_config(99);
  const auto a = sim::simulate_app(cfg, kernels::App::kTeaLeaf).cycles();
  const auto b = sim::simulate_app(cfg, kernels::App::kTeaLeaf).cycles();
  const auto c = sim::simulate_app(cfg, kernels::App::kTeaLeaf).cycles();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(PropertySweep, CycleCountsScaleWithWorkload) {
  // Twice the STREAM repetitions costs clearly more but sub-linearly: the
  // second pass runs L2-warm (footprint 192 KiB fits the 256 KiB baseline
  // L2), so it is cheaper than the cold first pass.
  kernels::StreamInput one;
  kernels::StreamInput two;
  two.repetitions = 2;
  const auto cfg = config::thunderx2_baseline();
  const auto c1 = sim::simulate(cfg, kernels::build_stream(one, 128)).cycles();
  const auto c2 = sim::simulate(cfg, kernels::build_stream(two, 128)).cycles();
  EXPECT_GT(static_cast<double>(c2), 1.2 * static_cast<double>(c1));
  EXPECT_LT(static_cast<double>(c2), 2.0 * static_cast<double>(c1));
}

TEST(PropertySweep, EventSkipPreservesExactCycleCounts) {
  // The idle-cycle fast-forward must be an optimisation, not a model change:
  // an adversarially latency-bound run (tiny ROB, slow RAM) is exactly
  // reproducible and bounded below by its serial-latency floor.
  config::CpuConfig cfg = config::thunderx2_baseline();
  cfg.core.rob_size = 8;
  cfg.mem.ram_latency_ns = 200;
  cfg.mem.prefetch_distance = 0;
  const auto a = sim::simulate_app(cfg, kernels::App::kStream).cycles();
  const auto b = sim::simulate_app(cfg, kernels::App::kStream).cycles();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 200'000u);  // thousands of serialised ~500-cycle misses
}

}  // namespace
}  // namespace adse
