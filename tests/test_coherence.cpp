/// \file test_coherence.cpp
/// Coherence litmus suite: hand-built 2–4 core interleavings driven through
/// TiledMemory with exact expected MSI state transitions after every step,
/// for BOTH directory variants (full-map and limited/sparse); the injected
/// protocol defects proven catchable by the conservation laws; and the
/// multicore fuzzer end-to-end (clean soak, injection -> detection ->
/// ddmin shrink -> repro round-trip) plus multicore-simulation determinism.
///
/// Address scheme (4 tiles, ThunderX2 geometry: 64 B lines, 32 KiB 8-way L1,
/// so 64 L1 sets): home(addr) = line-index bits [1:0], L1 set = line-index
/// bits [5:0]. Same-L1-set addresses differ by 64*64 = 4096 B and always
/// share a home slice.

#include "coherence/tiled_memory.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "check/mc_fuzzer.hpp"
#include "common/check.hpp"
#include "common/require.hpp"
#include "config/baselines.hpp"
#include "kernels/threaded.hpp"
#include "sim/multicore.hpp"

namespace adse::coherence {
namespace {

using check::McFuzzOptions;
using check::McPoint;
using check::McViolation;
using config::CpuConfig;
using config::DirectoryScheme;

constexpr std::uint64_t kLine = 64;       // baseline cache_line_bytes
constexpr std::uint64_t kSetStride = 64 * kLine;  // same L1 set, same home

CpuConfig make_cfg(int cores, DirectoryScheme scheme, int entries = 0) {
  CpuConfig cfg = config::thunderx2_baseline();
  cfg.mc.num_cores = cores;
  cfg.mc.directory_scheme = scheme;
  cfg.mc.directory_entries = entries;
  return cfg;
}

/// Each litmus runs under both directory variants; a full-size sparse
/// directory must behave identically to the full map (no forced evictions).
const DirectoryScheme kBothSchemes[] = {DirectoryScheme::kFullMap,
                                        DirectoryScheme::kSparse};

/// One 8-byte access, sequentially timed; returns the tiled machine's clock.
std::uint64_t touch(TiledMemory& mem, int tile, std::uint64_t addr,
                    bool is_store, std::uint64_t now) {
  return mem.access(tile, addr, 8, is_store, now).ready_cycle;
}

// ---- litmus 1: read-shared then upgrade ------------------------------------

TEST(Litmus, ReadSharedThenUpgrade) {
  for (DirectoryScheme scheme : kBothSchemes) {
    SCOPED_TRACE(config::directory_scheme_name(scheme));
    TiledMemory mem(make_cfg(4, scheme));
    ScopedCheck armed(true);
    const std::uint64_t a = 0x10080;  // line index 0x402 -> home tile 2
    ASSERT_EQ(mem.home(a), 2);
    std::uint64_t t = 0;

    // Core 0 read-misses: Shared, sole sharer, no owner.
    t = touch(mem, 0, a, false, t);
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kShared);
    EXPECT_EQ(mem.directory_sharers(a), 0b0001u);
    EXPECT_EQ(mem.directory_owner(a), -1);
    mem.verify("litmus step 1");

    // Core 1 read-misses: both Shared.
    t = touch(mem, 1, a, false, t);
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kShared);
    EXPECT_EQ(mem.l1_state(1, a), TiledMemory::L1State::kShared);
    EXPECT_EQ(mem.directory_sharers(a), 0b0011u);
    EXPECT_EQ(mem.directory_owner(a), -1);
    mem.verify("litmus step 2");

    // Core 1 store-hits on its Shared copy: upgrade. The home invalidates
    // core 0 (exactly one invalidation, acked) and records core 1 as owner.
    t = touch(mem, 1, a, true, t);
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kInvalid);
    EXPECT_EQ(mem.l1_state(1, a), TiledMemory::L1State::kModified);
    EXPECT_EQ(mem.directory_sharers(a), 0b0010u);
    EXPECT_EQ(mem.directory_owner(a), 1);
    EXPECT_EQ(mem.stats().upgrades, 1u);
    EXPECT_EQ(mem.stats().invalidations_sent, 1u);
    EXPECT_EQ(mem.stats().invalidation_acks, 1u);
    mem.verify("litmus step 3");
  }
}

// ---- litmus 2: M -> S downgrade on a remote read ---------------------------

TEST(Litmus, RemoteReadDowngradesModifiedOwner) {
  for (DirectoryScheme scheme : kBothSchemes) {
    SCOPED_TRACE(config::directory_scheme_name(scheme));
    TiledMemory mem(make_cfg(4, scheme));
    ScopedCheck armed(true);
    const std::uint64_t a = 0x100C0;  // line index 0x403 -> home tile 3
    ASSERT_EQ(mem.home(a), 3);
    std::uint64_t t = 0;

    // Core 2 store-misses: fetch-exclusive, Modified.
    t = touch(mem, 2, a, true, t);
    EXPECT_EQ(mem.l1_state(2, a), TiledMemory::L1State::kModified);
    EXPECT_EQ(mem.directory_owner(a), 2);
    mem.verify("litmus step 1");

    // Core 0 reads: the home downgrades the owner (M -> S, dirty data
    // written back into the home slice) and both end up Shared.
    t = touch(mem, 0, a, false, t);
    EXPECT_EQ(mem.l1_state(2, a), TiledMemory::L1State::kShared);
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kShared);
    EXPECT_EQ(mem.directory_sharers(a), 0b0101u);
    EXPECT_EQ(mem.directory_owner(a), -1);
    EXPECT_EQ(mem.stats().downgrades, 1u);
    EXPECT_EQ(mem.stats().writebacks_owner, 1u);
    mem.verify("litmus step 2");
  }
}

// ---- litmus 3: store to a remotely-Modified line ---------------------------

TEST(Litmus, RemoteWriteInvalidatesModifiedOwner) {
  for (DirectoryScheme scheme : kBothSchemes) {
    SCOPED_TRACE(config::directory_scheme_name(scheme));
    TiledMemory mem(make_cfg(2, scheme));
    ScopedCheck armed(true);
    const std::uint64_t a = 0x10040;  // 2 tiles: line index 0x401 -> home 1
    ASSERT_EQ(mem.home(a), 1);
    std::uint64_t t = 0;

    t = touch(mem, 0, a, true, t);
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kModified);

    // Core 1 store-misses: ownership migrates, core 0 loses its copy.
    t = touch(mem, 1, a, true, t);
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kInvalid);
    EXPECT_EQ(mem.l1_state(1, a), TiledMemory::L1State::kModified);
    EXPECT_EQ(mem.directory_sharers(a), 0b10u);
    EXPECT_EQ(mem.directory_owner(a), 1);
    EXPECT_EQ(mem.stats().invalidations_sent, mem.stats().invalidation_acks);
    EXPECT_EQ(mem.stats().writebacks_owner, 1u);
    mem.verify("litmus step 2");
  }
}

// ---- litmus 4: writeback on M-line L1 eviction -----------------------------

TEST(Litmus, ModifiedEvictionWritesBackAndUntracks) {
  for (DirectoryScheme scheme : kBothSchemes) {
    SCOPED_TRACE(config::directory_scheme_name(scheme));
    TiledMemory mem(make_cfg(4, scheme));
    ScopedCheck armed(true);
    const std::uint64_t a = 0x10000;  // line index 0x400 -> home tile 0
    std::uint64_t t = 0;

    t = touch(mem, 0, a, true, t);
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kModified);

    // Eight more lines in the same 8-way L1 set force a's true-LRU eviction.
    // Non-silent protocol: the dirty line is written back to its home slice
    // and the directory entry is released.
    for (int k = 1; k <= 8; ++k) {
      t = touch(mem, 0, a + k * kSetStride, false, t);
      mem.verify("litmus fill");
    }
    EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kInvalid);
    EXPECT_EQ(mem.directory_sharers(a), 0u);
    EXPECT_EQ(mem.directory_owner(a), -1);
    EXPECT_EQ(mem.stats().writebacks_eviction, 1u);
    mem.verify("litmus end");
  }
}

// ---- litmus 5: sparse directory eviction forces invalidation ---------------

TEST(Litmus, SparseDirectoryEvictionInvalidatesTrackedSharers) {
  // 8 directory entries per slice (2 sets x 4 ways). Reading 16 distinct
  // lines homed at one slice must overflow the entry table; every forced
  // eviction recalls a line some L1 still holds.
  TiledMemory mem(make_cfg(4, DirectoryScheme::kSparse, 8));
  ScopedCheck armed(true);
  std::uint64_t t = 0;
  const int kLines = 16;
  for (int k = 0; k < kLines; ++k) {
    // line index 4k: home 0, distinct L1 sets for k < 16.
    t = touch(mem, 1, static_cast<std::uint64_t>(4 * k) * kLine, false, t);
    mem.verify("sparse fill");
  }
  EXPECT_GE(mem.directory_evictions(), 8u);

  // Each directory eviction dropped a resident Shared copy, so fewer than
  // kLines survive in core 1's L1 even though its capacity is untouched.
  int shared = 0;
  for (int k = 0; k < kLines; ++k) {
    const std::uint64_t a = static_cast<std::uint64_t>(4 * k) * kLine;
    if (mem.l1_state(1, a) == TiledMemory::L1State::kShared) shared++;
  }
  EXPECT_LE(shared, 8);
  EXPECT_EQ(mem.stats().invalidations_sent, mem.stats().invalidation_acks);
  mem.verify("sparse end");

  // A full map given the same workload never evicts directory entries.
  TiledMemory full(make_cfg(4, DirectoryScheme::kFullMap));
  std::uint64_t tf = 0;
  for (int k = 0; k < kLines; ++k) {
    tf = touch(full, 1, static_cast<std::uint64_t>(4 * k) * kLine, false, tf);
  }
  EXPECT_EQ(full.directory_evictions(), 0u);
}

// ---- injected defects: every planted bug must trip a law -------------------

TEST(Injection, DroppedInvalidationAckTripsConservation) {
  TiledOptions opt;
  opt.inject = InjectedBug::kDropInvalAck;
  TiledMemory mem(make_cfg(2, DirectoryScheme::kFullMap), config::kCoreClockGhz,
                  opt);
  ScopedCheck armed(true);
  const std::uint64_t a = 0x10000;
  std::uint64_t t = touch(mem, 0, a, false, 0);
  // Core 1's upgrade sends the (lost) invalidation; the armed post-access
  // counter check sees sent != acked immediately.
  EXPECT_THROW(touch(mem, 1, a, true, t), InvariantError);
}

TEST(Injection, LeakedSharerBitTripsWalk) {
  TiledOptions opt;
  opt.inject = InjectedBug::kLeakSharerBit;
  TiledMemory mem(make_cfg(2, DirectoryScheme::kFullMap), config::kCoreClockGhz,
                  opt);
  const std::uint64_t a = 0x10000;
  std::uint64_t t = touch(mem, 0, a, false, 0);
  // Evict a (clean) from core 0's L1: the eviction notification is lost, the
  // directory keeps a stale sharer bit. Counters stay balanced — only the
  // full structural walk catches this one.
  for (int k = 1; k <= 8; ++k) {
    t = touch(mem, 0, a + k * kSetStride, false, t);
  }
  EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kInvalid);
  EXPECT_THROW(mem.verify("stale sharer"), InvariantError);
}

TEST(Injection, SkippedDowngradeTripsWalk) {
  TiledOptions opt;
  opt.inject = InjectedBug::kSkipDowngrade;
  TiledMemory mem(make_cfg(2, DirectoryScheme::kFullMap), config::kCoreClockGhz,
                  opt);
  const std::uint64_t a = 0x10000;
  std::uint64_t t = touch(mem, 0, a, true, 0);
  t = touch(mem, 1, a, false, t);  // the downgrade core 0 never performs
  EXPECT_EQ(mem.l1_state(0, a), TiledMemory::L1State::kModified);
  EXPECT_THROW(mem.verify("modified without ownership"), InvariantError);
}

// ---- multicore fuzzer end-to-end -------------------------------------------

TEST(McFuzz, CleanSoakFindsNothing) {
  McFuzzOptions options;
  options.iterations = 16;
  options.seed = 7;
  const check::McFuzzReport report = check::mc_fuzz(options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.runs, 16u);
}

TEST(McFuzz, InjectedBugCaughtAndShrunkToTwoDimensions) {
  McFuzzOptions options;
  options.iterations = 8;
  options.seed = 1;
  options.inject = InjectedBug::kDropInvalAck;
  const check::McFuzzReport report = check::mc_fuzz(options);
  ASSERT_FALSE(report.ok());
  // ddmin must land within two non-baseline dimensions of the default
  // McPoint (the ISSUE acceptance bar for the planted-defect demo).
  for (const McViolation& v : report.violations) {
    McViolation copy = v;
    EXPECT_LE(check::mc_shrink_violation(copy), 2u) << copy.message;
    EXPECT_TRUE(check::mc_reproduces(copy));
  }
}

TEST(McFuzz, ReproStringRoundTrips) {
  McViolation v;
  v.seed = 42;
  v.iteration = 7;
  v.point.num_cores = 8;
  v.point.directory_scheme = DirectoryScheme::kSparse;
  v.point.directory_entries = 16;
  v.point.vector_length_bits = 512;
  v.point.app = kernels::McApp::kThreadedStream;
  v.point.interleave_seed = 0xDEADBEEFCAFEF00DULL;  // > INT64_MAX when doubled
  v.inject = InjectedBug::kLeakSharerBit;
  v.message = "requirement failed: stale sharer bit";

  const McViolation back = check::mc_repro_from_string(
      check::mc_repro_to_string(v));
  EXPECT_EQ(back.seed, v.seed);
  EXPECT_EQ(back.iteration, v.iteration);
  EXPECT_EQ(back.point.num_cores, v.point.num_cores);
  EXPECT_EQ(back.point.directory_scheme, v.point.directory_scheme);
  EXPECT_EQ(back.point.directory_entries, v.point.directory_entries);
  EXPECT_EQ(back.point.vector_length_bits, v.point.vector_length_bits);
  EXPECT_EQ(back.point.app, v.point.app);
  EXPECT_EQ(back.point.interleave_seed, v.point.interleave_seed);
  EXPECT_EQ(back.inject, v.inject);
  EXPECT_EQ(back.message, v.message);
}

TEST(McFuzz, ReproFileRoundTripsThroughDisk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "adse_mc_repro_test").string();
  McViolation v;
  v.seed = 3;
  v.iteration = 11;
  v.point.num_cores = 4;
  v.inject = InjectedBug::kSkipDowngrade;
  v.message = "walk failed";
  check::save_mc_repro(dir, v);
  EXPECT_EQ(v.repro_path, dir + "/mc-repro-3-11.txt");
  const McViolation back = check::load_mc_repro(v.repro_path);
  EXPECT_EQ(back.point.num_cores, 4);
  EXPECT_EQ(back.inject, InjectedBug::kSkipDowngrade);
  std::filesystem::remove_all(dir);
}

TEST(McFuzz, MalformedReproRejected) {
  EXPECT_THROW(check::mc_repro_from_string("not a repro"), InvariantError);
  EXPECT_THROW(check::mc_repro_from_string("adse-mc-repro v1\nbogus_key 1\n"),
               InvariantError);
}

// ---- multicore simulation: determinism and retirement ----------------------

TEST(MulticoreSim, DeterministicAndRetiresEveryUop) {
  for (kernels::McApp app : kernels::all_mc_apps()) {
    SCOPED_TRACE(kernels::mc_app_slug(app));
    const CpuConfig cfg = make_cfg(4, DirectoryScheme::kFullMap);
    ScopedCheck armed(true);
    const sim::MulticoreResult first = sim::simulate_mc_app(cfg, app);
    const sim::MulticoreResult second = sim::simulate_mc_app(cfg, app);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.retired_uops, second.retired_uops);
    EXPECT_EQ(first.per_core_cycles, second.per_core_cycles);

    const kernels::ThreadedProgram program =
        kernels::build_mc_app(app, 4, cfg.core.vector_length_bits);
    std::uint64_t expected = 0;
    for (const auto& thread : program.threads) expected += thread.ops.size();
    EXPECT_EQ(first.retired_uops, expected);
    EXPECT_GT(first.cycles, 0u);
    EXPECT_TRUE(first.power.valid());
    EXPECT_GT(first.power.energy_j(), 0.0);
  }
}

TEST(MulticoreSim, StartSkewChangesInterleavingNotCorrectness) {
  const CpuConfig cfg = make_cfg(2, DirectoryScheme::kFullMap);
  ScopedCheck armed(true);
  sim::MulticoreOptions skewed;
  skewed.start_skew = {0, 17};
  const sim::MulticoreResult base =
      sim::simulate_mc_app(cfg, kernels::McApp::kRingPass);
  const sim::MulticoreResult shifted =
      sim::simulate_mc_app(cfg, kernels::McApp::kRingPass, skewed);
  EXPECT_EQ(base.retired_uops, shifted.retired_uops);
  // Skew genuinely changes the protocol race ordering (here it happens to
  // *help*: the late starter dodges upgrade/downgrade ping-pong). The sim is
  // deterministic, so the inequality is stable.
  EXPECT_NE(shifted.cycles, base.cycles);
}

TEST(MulticoreSim, RingPassIsCoherenceBound) {
  const CpuConfig cfg = make_cfg(4, DirectoryScheme::kFullMap);
  ScopedCheck armed(true);
  const sim::MulticoreResult r =
      sim::simulate_mc_app(cfg, kernels::McApp::kRingPass);
  // Every round is a chain of downgrades and upgrades around the ring.
  EXPECT_GT(r.mem.downgrades, 0u);
  EXPECT_GT(r.mem.upgrades, 0u);
  EXPECT_GT(r.mem.invalidations_sent, 0u);
  EXPECT_EQ(r.mem.invalidations_sent, r.mem.invalidation_acks);
}

TEST(MulticoreSim, CoreCountMismatchThrows) {
  const CpuConfig cfg = make_cfg(4, DirectoryScheme::kFullMap);
  const kernels::ThreadedProgram two =
      kernels::build_mc_app(kernels::McApp::kRingPass, 2, 128);
  EXPECT_THROW(sim::simulate_multicore(cfg, two), InvariantError);
}

}  // namespace
}  // namespace adse::coherence
