#include "config/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/require.hpp"
#include "config/baselines.hpp"
#include "config/param_space.hpp"

namespace adse::config {
namespace {

TEST(Serialize, YamlRoundTrip) {
  const CpuConfig original = a64fx_like();
  const CpuConfig back = config_from_yaml(to_yaml(original));
  EXPECT_EQ(feature_vector(back), feature_vector(original));
  EXPECT_EQ(back.name, original.name);
}

TEST(Serialize, YamlRoundTripsSampledConfigs) {
  const ParameterSpace space;
  Rng rng(21);
  for (int i = 0; i < 25; ++i) {
    const CpuConfig c = space.sample(rng);
    EXPECT_EQ(feature_vector(config_from_yaml(to_yaml(c))), feature_vector(c));
  }
}

TEST(Serialize, YamlHasSections) {
  const std::string yaml = to_yaml(thunderx2_baseline());
  EXPECT_NE(yaml.find("core:"), std::string::npos);
  EXPECT_NE(yaml.find("memory:"), std::string::npos);
  EXPECT_NE(yaml.find("rob_size: 180"), std::string::npos);
  EXPECT_NE(yaml.find("l2_size_kib: 256"), std::string::npos);
}

TEST(Serialize, CommentsAndBlanksIgnored) {
  std::string yaml = to_yaml(thunderx2_baseline());
  yaml = "# leading comment\n\n" + yaml + "\n# trailing\n";
  EXPECT_NO_THROW(config_from_yaml(yaml));
}

TEST(Serialize, MissingKeysKeepDefaults) {
  const CpuConfig c = config_from_yaml(
      "name: tiny\ncore:\n  rob_size: 64\nmemory:\n  l2_size_kib: 512\n");
  EXPECT_EQ(c.core.rob_size, 64);
  EXPECT_EQ(c.mem.l2_size_kib, 512);
  EXPECT_EQ(c.name, "tiny");
  // Untouched field keeps the default.
  EXPECT_EQ(c.core.commit_width, CpuConfig{}.core.commit_width);
}

TEST(Serialize, UnknownKeyThrows) {
  EXPECT_THROW(config_from_yaml("core:\n  warp_drive: 9\n"), InvariantError);
}

TEST(Serialize, WrongSectionThrows) {
  EXPECT_THROW(config_from_yaml("memory:\n  rob_size: 64\n"), InvariantError);
  EXPECT_THROW(config_from_yaml("core:\n  l1_size_kib: 32\n"), InvariantError);
}

TEST(Serialize, InvalidResultingConfigThrows) {
  EXPECT_THROW(config_from_yaml("core:\n  rob_size: 5\n"), InvariantError);
}

TEST(Serialize, MalformedLineThrows) {
  EXPECT_THROW(config_from_yaml("core\n"), InvariantError);
}

TEST(Serialize, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_yaml_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "cfg.yaml").string();
  const CpuConfig original = big_future();
  save_yaml(path, original);
  const CpuConfig back = load_yaml(path);
  EXPECT_EQ(feature_vector(back), feature_vector(original));
  std::filesystem::remove_all(dir);
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW(load_yaml("/nonexistent/adse.yaml"), InvariantError);
}

}  // namespace
}  // namespace adse::config
