/// \file test_check.cpp
/// The verification harness verified: oracle bounds on hand-built traces
/// with hand-computed expectations, the invariant layer catching tampered
/// results, the ddmin shrinker on a synthetic failure predicate, and the
/// repro file round-trip.

#include "check/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "check/fuzzer.hpp"
#include "check/repro.hpp"
#include "common/check.hpp"
#include "common/require.hpp"
#include "config/baselines.hpp"
#include "eval/service.hpp"
#include "kernels/kernel_builder.hpp"
#include "sim/simulation.hpp"

namespace adse::check {
namespace {

using config::CpuConfig;
using config::ParamId;
using kernels::gp;

isa::Program straight_line(int n, isa::InstrGroup group) {
  kernels::KernelBuilder b("hand");
  for (int i = 0; i < n; ++i) b.op(group, gp(1), gp(2));
  return b.take();
}

// ---- oracle: retirement facts ---------------------------------------------

TEST(Oracle, CountsMatchTraceStats) {
  const CpuConfig cfg = config::thunderx2_baseline();
  for (kernels::App app : kernels::all_apps()) {
    const isa::Program trace =
        kernels::build_app(app, cfg.core.vector_length_bits);
    const isa::TraceStats stats = isa::compute_stats(trace);
    const Oracle oracle = reference_replay(trace, cfg);
    EXPECT_EQ(oracle.total_ops, stats.total);
    EXPECT_EQ(oracle.sve_ops, stats.sve_ops);
    for (int g = 0; g < isa::kNumInstrGroups; ++g) {
      EXPECT_EQ(oracle.by_group[g], stats.by_group[g]);
    }
  }
}

TEST(Oracle, EmptyProgramThrows) {
  const isa::Program empty;
  EXPECT_THROW(reference_replay(empty, config::thunderx2_baseline()),
               InvariantError);
}

// ---- oracle: hand-computed cycle bounds -----------------------------------

TEST(Oracle, SixIntOpsOnBaseline) {
  // 6 kInt ops on the ThunderX2 baseline. Lower bound: the width limits give
  // ceil(6/4) = 2, the three mixed ports give ceil(6/3) = 2, fetch needs
  // ceil(24/32) = 1 block — so 2. Upper bound: serial replay charges each op
  // the pipeline overhead plus its 1-cycle latency, then the slack.
  const Oracle oracle =
      reference_replay(straight_line(6, isa::InstrGroup::kInt),
                       config::thunderx2_baseline());
  EXPECT_EQ(oracle.total_ops, 6u);
  EXPECT_EQ(oracle.fetch_bytes, 6u * isa::kInstrBytes);
  EXPECT_EQ(oracle.min_cycles, 2u);
  EXPECT_EQ(oracle.max_cycles,
            6u * (kSerialPerOpOverhead + 1) + kSerialSlackCycles);
}

TEST(Oracle, CommitWidthOneForcesOneRetirePerCycle) {
  CpuConfig cfg = config::thunderx2_baseline();
  cfg.core.commit_width = 1;
  const Oracle oracle =
      reference_replay(straight_line(6, isa::InstrGroup::kInt), cfg);
  EXPECT_EQ(oracle.min_cycles, 6u);
}

TEST(Oracle, FpDivLatencyPricedIntoUpperBound) {
  // kFpDiv has a 16-cycle execution latency.
  const Oracle oracle =
      reference_replay(straight_line(2, isa::InstrGroup::kFpDiv),
                       config::thunderx2_baseline());
  EXPECT_EQ(oracle.max_cycles,
            2u * (kSerialPerOpOverhead + 16) + kSerialSlackCycles);
}

TEST(Oracle, StoreSendRateBoundsBelow) {
  // Baseline sends at most one store per cycle, so 5 stores need 5 cycles
  // whatever the widths.
  kernels::KernelBuilder b("stores");
  for (int i = 0; i < 5; ++i) {
    b.store(0x1000 + 8 * static_cast<std::uint64_t>(i), 8, gp(1), gp(2));
  }
  const Oracle oracle =
      reference_replay(b.take(), config::thunderx2_baseline());
  EXPECT_EQ(oracle.min_cycles, 5u);
}

TEST(Oracle, LoopBufferStreamingExemptsFetchBytes) {
  // 3 iterations of a 3-op body: only the first (training) iteration pulls
  // encoding bytes through fetch blocks — unless the body does not fit the
  // loop buffer, in which case every op pays.
  kernels::KernelBuilder b("loop");
  b.begin_loop();
  for (int iter = 0; iter < 3; ++iter) {
    b.begin_iteration();
    b.op(isa::InstrGroup::kInt, gp(1));
    b.op(isa::InstrGroup::kInt, gp(2));
    b.branch();
    b.end_iteration();
  }
  b.end_loop();
  const isa::Program trace = b.take();

  CpuConfig fits = config::thunderx2_baseline();  // loop buffer holds 32
  EXPECT_EQ(reference_replay(trace, fits).fetch_bytes,
            3u * isa::kInstrBytes);

  CpuConfig spills = fits;
  spills.core.loop_buffer_size = 2;  // 3-op body cannot stream
  EXPECT_EQ(reference_replay(trace, spills).fetch_bytes,
            9u * isa::kInstrBytes);
}

TEST(Oracle, LineStraddlingLoadCostsTwoLines) {
  // Same single load, aligned vs straddling a 64 B line boundary: the
  // serial upper bound prices exactly one extra line.
  kernels::KernelBuilder aligned("aligned");
  aligned.load(gp(1), 0x1000, 8, gp(2));
  kernels::KernelBuilder straddle("straddle");
  straddle.load(gp(1), 0x103c, 8, gp(2));  // crosses 0x1040
  const CpuConfig cfg = config::thunderx2_baseline();
  const Oracle one = reference_replay(aligned.take(), cfg);
  const Oracle two = reference_replay(straddle.take(), cfg);
  EXPECT_GT(two.max_cycles, one.max_cycles);
  const std::uint64_t line_cost = two.max_cycles - one.max_cycles;
  // ...and that extra line is the full miss path: at least the raw
  // L1+L2+RAM latencies of the baseline (4 + 11 + ~238 core cycles).
  EXPECT_GT(line_cost, 200u);
}

// ---- oracle vs the real simulator -----------------------------------------

TEST(Oracle, BoundsBracketRealRunsOnAnchorConfigs) {
  for (const CpuConfig& cfg :
       {config::thunderx2_baseline(), config::minimal_viable(),
        config::big_future(), config::a64fx_like()}) {
    for (kernels::App app : kernels::all_apps()) {
      const isa::Program trace =
          kernels::build_app(app, cfg.core.vector_length_bits);
      const sim::RunResult result = sim::simulate(cfg, trace);
      const Oracle oracle = reference_replay(trace, cfg);
      EXPECT_GE(result.core.cycles, oracle.min_cycles)
          << cfg.name << "/" << kernels::app_slug(app);
      EXPECT_LE(result.core.cycles, oracle.max_cycles)
          << cfg.name << "/" << kernels::app_slug(app);
      EXPECT_TRUE(verify_run(cfg, trace, result).empty());
    }
  }
}

TEST(VerifyRun, FlagsTamperedResults) {
  const CpuConfig cfg = config::thunderx2_baseline();
  const isa::Program trace =
      kernels::build_app(kernels::App::kStream, cfg.core.vector_length_bits);
  sim::RunResult result = sim::simulate(cfg, trace);

  sim::RunResult wrong_retired = result;
  wrong_retired.core.retired += 1;
  EXPECT_FALSE(verify_run(cfg, trace, wrong_retired).empty());

  sim::RunResult too_fast = result;
  too_fast.core.cycles = 1;
  EXPECT_FALSE(verify_run(cfg, trace, too_fast).empty());

  sim::RunResult too_slow = result;
  too_slow.core.cycles = result.core.cycles * 1000;
  EXPECT_FALSE(verify_run(cfg, trace, too_slow).empty());

  sim::RunResult lost_load = result;
  lost_load.mem.loads -= 1;
  EXPECT_FALSE(verify_run(cfg, trace, lost_load).empty());

  EXPECT_NO_THROW(require_clean_run(cfg, trace, result));
  EXPECT_THROW(require_clean_run(cfg, trace, too_fast), InvariantError);
}

// ---- the invariant layer switch -------------------------------------------

TEST(CheckSwitch, ScopedCheckRestoresState) {
  const bool before = CheckContext::enabled();
  {
    ScopedCheck on(true);
    EXPECT_TRUE(CheckContext::enabled());
    {
      ScopedCheck off(false);
      EXPECT_FALSE(CheckContext::enabled());
    }
    EXPECT_TRUE(CheckContext::enabled());
  }
  EXPECT_EQ(CheckContext::enabled(), before);
}

TEST(CheckSwitch, SimulationCleanWithChecksOn) {
  ScopedCheck on(true);
  for (kernels::App app : kernels::all_apps()) {
    EXPECT_NO_THROW(sim::simulate_app(config::thunderx2_baseline(), app));
  }
}

// ---- parameter editing helpers --------------------------------------------

TEST(ParamEdit, WithParamRoundTrips) {
  const CpuConfig base = config::thunderx2_baseline();
  const CpuConfig edited = with_param(base, ParamId::kRobSize, 256.0);
  EXPECT_EQ(edited.core.rob_size, 256);
  EXPECT_EQ(param_value(edited, ParamId::kRobSize), 256.0);
  const auto diff = diff_params(edited, base);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], ParamId::kRobSize);
  EXPECT_TRUE(diff_params(base, base).empty());
}

// ---- the shrinker ----------------------------------------------------------

TEST(Shrink, DdminFindsTheTwoCulpritParameters) {
  // Synthetic failure: fires iff ROB >= 300 AND L1 is at least 64 KiB —
  // whatever else is set. Starting from a config that differs from the
  // baseline in many parameters, ddmin must strip every irrelevant one.
  const CpuConfig baseline = config::thunderx2_baseline();
  CpuConfig noisy = baseline;
  noisy.core.rob_size = 400;
  noisy.mem.l1_size_kib = 128;
  noisy.core.gp_phys_regs = 256;
  noisy.core.fp_phys_regs = 64;
  noisy.core.commit_width = 9;
  noisy.mem.prefetch_distance = 9;
  noisy.core.load_queue_size = 200;

  Violation violation;
  violation.config = noisy;
  int probes = 0;
  const auto fires = [&probes](const Violation& v) {
    ++probes;
    return v.config.core.rob_size >= 300 && v.config.mem.l1_size_kib >= 64;
  };
  const std::size_t left = shrink_violation(fires, violation, baseline);
  EXPECT_EQ(left, 2u);
  EXPECT_EQ(violation.config.core.rob_size, 400);
  EXPECT_EQ(violation.config.mem.l1_size_kib, 128);
  EXPECT_EQ(violation.config.core.commit_width, baseline.core.commit_width);
  EXPECT_GT(probes, 0);
}

TEST(Shrink, ChainParameterIsNeverReset) {
  const CpuConfig baseline = config::thunderx2_baseline();
  Violation violation;
  violation.kind = Violation::Kind::kMonotonicity;
  violation.chain_param = ParamId::kRobSize;
  violation.config = with_param(baseline, ParamId::kRobSize, 64.0);
  const auto always = [](const Violation&) { return true; };
  EXPECT_EQ(shrink_violation(always, violation, baseline), 1u);
  EXPECT_EQ(violation.config.core.rob_size, 64);
}

// ---- repro files -----------------------------------------------------------

TEST(Repro, RoundTripsMonotonicityViolation) {
  Violation v;
  v.kind = Violation::Kind::kMonotonicity;
  v.app = kernels::App::kTeaLeaf;
  v.seed = 7;
  v.iteration = 42;
  v.config = with_param(config::thunderx2_baseline(), ParamId::kRamClock,
                        0.88592601106074531);
  v.message = "raising rob_size made tealeaf slower";
  v.chain_param = ParamId::kRobSize;
  v.chain_lo = 296;
  v.chain_hi = 472;
  v.cycles_lo = 117210;
  v.cycles_hi = 126517;

  const std::string text = repro_to_string(v);
  const Violation back = repro_from_string(text);
  EXPECT_EQ(back.kind, v.kind);
  EXPECT_EQ(back.app, v.app);
  EXPECT_EQ(back.seed, v.seed);
  EXPECT_EQ(back.iteration, v.iteration);
  EXPECT_EQ(back.message, v.message);
  ASSERT_TRUE(back.chain_param.has_value());
  EXPECT_EQ(*back.chain_param, ParamId::kRobSize);
  EXPECT_EQ(back.chain_lo, v.chain_lo);
  EXPECT_EQ(back.chain_hi, v.chain_hi);
  EXPECT_EQ(back.cycles_lo, v.cycles_lo);
  EXPECT_EQ(back.cycles_hi, v.cycles_hi);
  // The %.17g encoding preserves the continuous parameter exactly.
  EXPECT_EQ(config::feature_vector(back.config),
            config::feature_vector(v.config));
  // Serialisation is deterministic.
  EXPECT_EQ(repro_to_string(back), text);
}

TEST(Repro, SaveAndLoadThroughAFile) {
  Violation v;
  v.kind = Violation::Kind::kInvariant;
  v.app = kernels::App::kMiniBude;
  v.seed = 3;
  v.iteration = 9;
  v.config = with_param(config::thunderx2_baseline(), ParamId::kRobSize, 64.0);
  v.message = "multi-line\nmessage gets flattened";
  const std::string dir = ::testing::TempDir() + "adse_check_repro";
  save_repro(dir, v);
  ASSERT_FALSE(v.repro_path.empty());
  const Violation back = load_repro(v.repro_path);
  EXPECT_EQ(back.config.core.rob_size, 64);
  EXPECT_EQ(back.message, "multi-line;message gets flattened");
  std::remove(v.repro_path.c_str());
}

TEST(Repro, MalformedInputsThrow) {
  EXPECT_THROW(repro_from_string("not a repro"), InvariantError);
  EXPECT_THROW(repro_from_string("adse-check-repro v1\nbogus: x\nend\n"),
               InvariantError);
  EXPECT_THROW(
      repro_from_string("adse-check-repro v1\nkind: monotonicity\nend\n"),
      InvariantError);
  EXPECT_THROW(
      repro_from_string(
          "adse-check-repro v1\nset: rob_size not-a-number\nend\n"),
      InvariantError);
}

// ---- monotonicity machinery ------------------------------------------------

TEST(Monotone, SlackScalesWithCycles) {
  EXPECT_EQ(monotone_allowed_cycles(0), kMonotoneAbsSlack);
  EXPECT_EQ(monotone_allowed_cycles(100), 100 + kMonotoneAbsSlack);
  EXPECT_EQ(monotone_allowed_cycles(100000),
            100000 + static_cast<std::uint64_t>(100000 * kMonotoneRelSlack));
}

TEST(Monotone, ParamSetIsCapacityOnly) {
  const auto& params = monotone_params();
  EXPECT_NE(std::find(params.begin(), params.end(), ParamId::kRobSize),
            params.end());
  // Excluded: legitimately non-monotone knobs.
  EXPECT_EQ(std::find(params.begin(), params.end(),
                      ParamId::kPrefetchDistance),
            params.end());
  EXPECT_EQ(std::find(params.begin(), params.end(),
                      ParamId::kLsqCompletionWidth),
            params.end());
}

TEST(Monotone, FirstRegressionRespectsSlackAndErrors) {
  ChainResult chain;
  chain.values = {8, 16, 32, 64};
  chain.cycles = {1000, 995, 2000, 990};
  chain.errors = {"", "", "bad", ""};  // the 2000 outlier never competes
  EXPECT_EQ(chain.first_regression(), -1);
  chain.errors[2] = "";
  EXPECT_EQ(chain.first_regression(), 2);
}

// ---- fuzzer end-to-end ------------------------------------------------------

TEST(Fuzz, SmallRunIsCleanAndDeterministic) {
  eval::EvalService service;  // hermetic: no persistent store
  FuzzOptions options;
  options.iterations = 4;
  options.seed = 1;
  const FuzzReport first = fuzz(service, options);
  EXPECT_TRUE(first.ok()) << first.summary();
  EXPECT_EQ(first.iterations, 4);
  EXPECT_EQ(first.evaluations,
            4u * (1u + static_cast<unsigned>(options.chain_points)));
  const FuzzReport second = fuzz(service, options);
  EXPECT_EQ(second.violations.size(), first.violations.size());
  EXPECT_EQ(second.evaluations, first.evaluations);
}

TEST(Fuzz, ChainOnBaselineIsMonotone) {
  eval::EvalService service;
  const CpuConfig base = config::thunderx2_baseline();
  const ChainResult chain =
      run_chain(service, base, ParamId::kRobSize, {16, 64, 180, 512},
                kernels::App::kStream);
  ASSERT_EQ(chain.cycles.size(), 4u);
  for (const std::string& error : chain.errors) EXPECT_EQ(error, "");
  EXPECT_EQ(chain.first_regression(), -1);
  // A 16-entry ROB really is slower than a 512-entry one on STREAM.
  EXPECT_GT(chain.cycles.front(), chain.cycles.back());
}

TEST(Fuzz, RejectsDegenerateOptions) {
  eval::EvalService service;
  FuzzOptions options;
  options.iterations = 0;
  EXPECT_THROW(fuzz(service, options), InvariantError);
  options.iterations = 1;
  options.chain_points = 1;
  EXPECT_THROW(fuzz(service, options), InvariantError);
}

}  // namespace
}  // namespace adse::check
