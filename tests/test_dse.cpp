#include "dse/search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"
#include "dse/pareto.hpp"

namespace adse::dse {
namespace {

// --- acquisition ------------------------------------------------------------

TEST(Acquisition, EiPrefersUncertaintyAtEqualMean) {
  // The satellite requirement: with equal means, EI must rank the
  // high-uncertainty candidate above the zero-uncertainty one.
  const double best = 100.0;
  const ml::PredictionDistribution certain{100.0, 0.0};
  const ml::PredictionDistribution uncertain{100.0, 10.0};
  AcquisitionOptions ei;
  EXPECT_GT(acquisition_score(ei, uncertain, best),
            acquisition_score(ei, certain, best));
}

TEST(Acquisition, EiZeroStdDegradesToClampedGap) {
  EXPECT_DOUBLE_EQ(expected_improvement(90.0, 0.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(expected_improvement(110.0, 0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_improvement(95.0, 0.0, 100.0, 2.0), 3.0);
}

TEST(Acquisition, EiIsPositiveAndMonotoneInStd) {
  // Even a candidate predicted worse than the incumbent retains some EI
  // under uncertainty, and more spread means more of it.
  const double ei_small = expected_improvement(105.0, 1.0, 100.0);
  const double ei_large = expected_improvement(105.0, 20.0, 100.0);
  EXPECT_GT(ei_small, 0.0);
  EXPECT_GT(ei_large, ei_small);
}

TEST(Acquisition, EiRejectsNegativeStd) {
  EXPECT_THROW(expected_improvement(1.0, -0.1, 2.0), InvariantError);
}

TEST(Acquisition, LcbBalancesMeanAndSpread) {
  AcquisitionOptions lcb;
  lcb.kind = AcquisitionKind::kLowerConfidenceBound;
  lcb.beta = 2.0;
  // -(mean - beta*std): 90 certain scores -90; 100 with std 10 scores -80.
  EXPECT_GT(acquisition_score(lcb, {100.0, 10.0}, 0.0),
            acquisition_score(lcb, {90.0, 0.0}, 0.0));
}

TEST(Acquisition, GreedyIgnoresUncertainty) {
  AcquisitionOptions greedy;
  greedy.kind = AcquisitionKind::kGreedy;
  EXPECT_DOUBLE_EQ(acquisition_score(greedy, {50.0, 100.0}, 0.0),
                   acquisition_score(greedy, {50.0, 0.0}, 0.0));
  EXPECT_GT(acquisition_score(greedy, {40.0, 0.0}, 0.0),
            acquisition_score(greedy, {50.0, 0.0}, 0.0));
}

TEST(Acquisition, Names) {
  EXPECT_EQ(acquisition_name(AcquisitionKind::kExpectedImprovement), "ei");
  EXPECT_EQ(acquisition_name(AcquisitionKind::kLowerConfidenceBound), "lcb");
  EXPECT_EQ(acquisition_name(AcquisitionKind::kGreedy), "greedy");
}

TEST(Acquisition, EntropyBoundsAndOrdering) {
  // Uniform scores: maximal entropy ln(n). One dominant score: near zero.
  const double uniform = acquisition_entropy({1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(uniform, std::log(4.0), 1e-12);
  const double peaked = acquisition_entropy({0.0, 0.0, 0.0, 100.0});
  EXPECT_NEAR(peaked, 0.0, 1e-12);
  const double mixed = acquisition_entropy({1.0, 2.0, 3.0, 100.0});
  EXPECT_GT(uniform, mixed);
  EXPECT_GT(mixed, peaked);
  // All-equal-after-shift degenerates to the undecided maximum.
  EXPECT_NEAR(acquisition_entropy({5.0, 5.0}), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(acquisition_entropy({}), 0.0);
}

TEST(Acquisition, TopKSelectsHighestScores) {
  const std::vector<double> scores{0.1, 5.0, 3.0, 5.0, 4.0};
  const auto top = top_k_indices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie with index 3 broken by lower index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 4u);
  EXPECT_EQ(top_k_indices(scores, 99).size(), scores.size());
}

// --- pareto -----------------------------------------------------------------

TEST(Pareto, DominanceIsStrictSomewhere) {
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(dominates({2, 2}, {2, 2}));  // identical: no domination
  EXPECT_FALSE(dominates({1, 3}, {2, 2}));  // trade-off
  EXPECT_THROW(dominates({1}, {1, 2}), InvariantError);
}

TEST(Pareto, FrontKeepsNonDominatedPoints) {
  const std::vector<std::vector<double>> points{
      {1, 5}, {2, 2}, {5, 1}, {3, 3}, {6, 6}};
  // {3,3} is dominated by {2,2}; {6,6} by everything else.
  EXPECT_EQ(pareto_front(points), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Pareto, DuplicatesAllSurvive) {
  const std::vector<std::vector<double>> points{{1, 1}, {1, 1}, {2, 2}};
  EXPECT_EQ(pareto_front(points), (std::vector<std::size_t>{0, 1}));
}

// --- hypervolume ------------------------------------------------------------

TEST(Hypervolume, TwoDExactRectanglesAndUnions) {
  const std::vector<double> ref{4, 4};
  // One point: a single rectangle up to the reference.
  EXPECT_DOUBLE_EQ(hypervolume({{2, 2}}, ref), 4.0);
  // Staircase of two trade-off points: 2x3 + 1x1 strips.
  EXPECT_DOUBLE_EQ(hypervolume({{2, 1}, {1, 3}}, ref), 7.0);
  // A dominated point adds nothing.
  EXPECT_DOUBLE_EQ(hypervolume({{2, 1}, {1, 3}, {3, 3}}, ref), 7.0);
  EXPECT_DOUBLE_EQ(hypervolume({}, ref), 0.0);
}

TEST(Hypervolume, DuplicatesAddNothing) {
  const std::vector<double> ref{4, 4};
  EXPECT_DOUBLE_EQ(hypervolume({{2, 2}, {2, 2}, {2, 2}}, ref), 4.0);
  const std::vector<double> ref3{4, 4, 4};
  EXPECT_DOUBLE_EQ(hypervolume({{2, 2, 2}, {2, 2, 2}}, ref3), 8.0);
}

TEST(Hypervolume, ReferenceClipping) {
  const std::vector<double> ref{4, 4};
  // At or beyond the reference in any coordinate: zero contribution.
  EXPECT_DOUBLE_EQ(hypervolume({{4, 1}}, ref), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume({{1, 5}}, ref), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume({{5, 5}}, ref), 0.0);
  // A clipped point must not shrink what the others dominate.
  EXPECT_DOUBLE_EQ(hypervolume({{2, 2}, {9, 1}}, ref), 4.0);
}

TEST(Hypervolume, ThreeDExactBoxesAndSweep) {
  const std::vector<double> ref{4, 4, 4};
  EXPECT_DOUBLE_EQ(hypervolume({{2, 2, 2}}, ref), 8.0);
  // Two disjointly-dominating points: inclusion-exclusion by hand.
  // A=(1,3,3): box 3x1x1 = 3;  B=(3,1,1): box 1x3x3 = 9;
  // overlap = (4-3)x(4-3)x(4-3) = 1  ->  union = 11.
  EXPECT_DOUBLE_EQ(hypervolume({{1, 3, 3}, {3, 1, 1}}, ref), 11.0);
  // Dominated point adds nothing in 3-D either.
  EXPECT_DOUBLE_EQ(hypervolume({{1, 3, 3}, {3, 1, 1}, {3, 3, 3}}, ref), 11.0);
}

TEST(Hypervolume, MonotoneInAddedPoints) {
  const std::vector<double> ref{10, 10, 10};
  std::vector<std::vector<double>> points;
  Rng rng(11);
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.uniform_real(0.0, 12.0), rng.uniform_real(0.0, 12.0),
                      rng.uniform_real(0.0, 12.0)});
    const double hv = hypervolume(points, ref);
    EXPECT_GE(hv, prev - 1e-12);
    EXPECT_LE(hv, 1000.0 + 1e-9);  // bounded by the reference box
    prev = hv;
  }
}

TEST(Hypervolume, RejectsUnsupportedWidths) {
  EXPECT_THROW(hypervolume({{1}}, {4}), InvariantError);
  EXPECT_THROW(hypervolume({{1, 2, 3, 4}}, {5, 5, 5, 5}), InvariantError);
  EXPECT_THROW(hypervolume({{1, 2}}, {4, 4, 4}), InvariantError);
}

// --- candidates -------------------------------------------------------------

TEST(Candidates, SeenSetDeduplicates) {
  const config::ParameterSpace space;
  Rng rng(41);
  SeenSet seen;
  const config::CpuConfig c = space.sample(rng);
  EXPECT_FALSE(seen.contains(c));
  EXPECT_TRUE(seen.insert(c));
  EXPECT_FALSE(seen.insert(c));
  EXPECT_TRUE(seen.contains(c));
  EXPECT_EQ(seen.size(), 1u);
}

TEST(Candidates, PoolIsValidAndDeduplicated) {
  const config::ParameterSpace space;
  Rng rng(42);
  SeenSet simulated;
  std::vector<config::CpuConfig> incumbents;
  for (int i = 0; i < 3; ++i) {
    incumbents.push_back(space.sample(rng));
    simulated.insert(incumbents.back());
  }
  CandidateOptions options;
  options.uniform_draws = 50;
  options.num_incumbents = 3;
  options.mutants_per_incumbent = 10;
  const auto pool = generate_candidates(space, options, incumbents, simulated,
                                        rng);
  EXPECT_GT(pool.size(), 40u);
  SeenSet unique;
  for (const auto& c : pool) {
    EXPECT_TRUE(config::is_valid(c));
    EXPECT_FALSE(simulated.contains(c));  // never re-propose a simulated point
    EXPECT_TRUE(unique.insert(c));        // no duplicates within the pool
  }
}

TEST(Candidates, RespectsPinnedVectorLength) {
  const config::ParameterSpace space;
  Rng rng(43);
  config::SampleConstraints constraints;
  constraints.fixed_vector_length = 512;
  SeenSet simulated;
  std::vector<config::CpuConfig> incumbents{space.sample(rng, constraints)};
  CandidateOptions options;
  options.uniform_draws = 30;
  options.mutants_per_incumbent = 15;
  const auto pool = generate_candidates(space, options, incumbents, simulated,
                                        rng, constraints);
  for (const auto& c : pool) EXPECT_EQ(c.core.vector_length_bits, 512);
}

// --- telemetry --------------------------------------------------------------

Journal sample_journal() {
  Journal journal;
  for (int r = 0; r < 3; ++r) {
    RoundRecord record;
    record.round = r;
    record.sims_total = 24 + 8 * r;
    record.pool_size = 400 + r;
    record.best_objective = 50000.0 - 1000.0 * r;
    record.surrogate_oob_mae = 4000.0 / (r + 1);
    record.acquisition_entropy = 5.0 - r;
    record.round_seconds = 0.25 * (r + 1);
    journal.rounds.push_back(record);
  }
  return journal;
}

TEST(Telemetry, TableRoundTrip) {
  const Journal journal = sample_journal();
  const Journal back = Journal::from_table(journal.to_table());
  ASSERT_EQ(back.rounds.size(), journal.rounds.size());
  for (std::size_t i = 0; i < journal.rounds.size(); ++i) {
    EXPECT_EQ(back.rounds[i].round, journal.rounds[i].round);
    EXPECT_EQ(back.rounds[i].sims_total, journal.rounds[i].sims_total);
    EXPECT_EQ(back.rounds[i].pool_size, journal.rounds[i].pool_size);
    EXPECT_DOUBLE_EQ(back.rounds[i].best_objective,
                     journal.rounds[i].best_objective);
    EXPECT_DOUBLE_EQ(back.rounds[i].surrogate_oob_mae,
                     journal.rounds[i].surrogate_oob_mae);
    EXPECT_DOUBLE_EQ(back.rounds[i].acquisition_entropy,
                     journal.rounds[i].acquisition_entropy);
    EXPECT_DOUBLE_EQ(back.rounds[i].round_seconds,
                     journal.rounds[i].round_seconds);
  }
}

TEST(Telemetry, FileRoundTripAndSchemaCheck) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_dse_journal";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "journal.csv").string();
  const Journal journal = sample_journal();
  write_journal(path, journal);
  EXPECT_TRUE(file_exists(path));
  const Journal back = load_journal(path);
  EXPECT_EQ(back.rounds.size(), 3u);

  CsvTable bad;
  bad.columns = {"nope"};
  bad.rows = {{1.0}};
  EXPECT_THROW(Journal::from_table(bad), InvariantError);
  EXPECT_THROW(load_journal((dir / "missing.csv").string()), InvariantError);
  std::filesystem::remove_all(dir);
}

// --- search loop ------------------------------------------------------------

SearchOptions smoke_options() {
  SearchOptions options;
  options.label = "smoke";
  options.app = kernels::App::kStream;
  options.max_simulations = 28;
  options.initial_samples = 12;
  options.batch_size = 8;
  options.candidates.uniform_draws = 40;
  options.candidates.mutants_per_incumbent = 8;
  options.candidates.num_incumbents = 3;
  options.forest.num_trees = 15;
  options.seed = 5;
  options.threads = 2;
  options.persist = false;
  return options;
}

TEST(Search, SpendsExactlyTheBudgetAndJournalsEveryRound) {
  const SearchResult result = search(smoke_options());
  EXPECT_EQ(result.evaluated.size(), 28u);
  // 12 initial + ceil(16 / 8) guided rounds.
  ASSERT_EQ(result.journal.rounds.size(), 3u);
  EXPECT_EQ(result.journal.rounds.front().sims_total, 12);
  EXPECT_EQ(result.journal.rounds.back().sims_total, 28);
  for (const auto& r : result.journal.rounds) {
    EXPECT_GT(r.best_objective, 0.0);
    EXPECT_GE(r.round_seconds, 0.0);
  }
  // Guided rounds score a real pool and a fitted surrogate.
  EXPECT_GT(result.journal.rounds.back().pool_size, 0);
  EXPECT_GT(result.journal.rounds.back().surrogate_oob_mae, 0.0);
  EXPECT_TRUE(result.journal_file.empty());  // persist was off
}

TEST(Search, BestIndexAndCurveAreConsistent) {
  const SearchResult result = search(smoke_options());
  const auto curve = result.best_so_far();
  ASSERT_EQ(curve.size(), result.evaluated.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1]);  // monotone non-increasing
  }
  EXPECT_DOUBLE_EQ(curve.back(), result.best().objective_value);
  EXPECT_EQ(result.sims_to_reach(result.best().objective_value),
            result.best_index + 1);
  EXPECT_EQ(result.sims_to_reach(0.0), result.evaluated.size() + 1);
  // Journal's best matches the curve's.
  EXPECT_DOUBLE_EQ(result.journal.rounds.back().best_objective, curve.back());
}

TEST(Search, DeterministicAcrossThreadCounts) {
  SearchOptions one = smoke_options();
  one.threads = 1;
  SearchOptions four = smoke_options();
  four.threads = 4;
  const SearchResult a = search(one);
  const SearchResult b = search(four);
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.evaluated[i].objective_value,
                     b.evaluated[i].objective_value);
    EXPECT_EQ(config::feature_vector(a.evaluated[i].config),
              config::feature_vector(b.evaluated[i].config));
  }
}

TEST(Search, EveryEvaluatedConfigIsValidAndUnique) {
  const SearchResult result = search(smoke_options());
  SeenSet seen;
  for (const auto& e : result.evaluated) {
    EXPECT_TRUE(config::is_valid(e.config));
    EXPECT_TRUE(seen.insert(e.config));  // budget never spent twice
    EXPECT_DOUBLE_EQ(
        e.objective_value,
        e.cycles[static_cast<std::size_t>(kernels::App::kStream)]);
  }
}

TEST(Search, MultiObjectiveModeKeepsPerAppCyclesAndPareto) {
  SearchOptions options = smoke_options();
  options.objective = Objective::kGeomeanAllApps;
  options.max_simulations = 16;
  options.initial_samples = 10;
  options.batch_size = 6;
  const SearchResult result = search(options);
  EXPECT_EQ(result.evaluated.size(), 16u);
  for (const auto& e : result.evaluated) {
    for (double c : e.cycles) EXPECT_GT(c, 0.0);
  }
  const auto front =
      result.pareto_between(kernels::App::kStream, kernels::App::kMiniBude);
  EXPECT_GE(front.size(), 1u);
  // The best-geomean point cannot be dominated in every pair... but it CAN
  // be off a 2-app front; what must hold is that every front member is
  // non-dominated, i.e. the front of the front is itself.
  std::vector<std::vector<double>> front_points;
  for (std::size_t idx : front) {
    front_points.push_back(
        {result.evaluated[idx]
             .cycles[static_cast<std::size_t>(kernels::App::kStream)],
         result.evaluated[idx]
             .cycles[static_cast<std::size_t>(kernels::App::kMiniBude)]});
  }
  const auto refined = pareto_front(front_points);
  EXPECT_EQ(refined.size(), front_points.size());
}

TEST(Search, PpaModeFillsEnergyAreaAndGrowsHypervolume) {
  SearchOptions options = smoke_options();
  options.objective = Objective::kCyclesEnergyArea;
  options.max_simulations = 20;
  options.initial_samples = 10;
  options.batch_size = 5;
  const SearchResult result = search(options);
  EXPECT_EQ(result.evaluated.size(), 20u);

  const auto app = static_cast<std::size_t>(options.app);
  for (const auto& e : result.evaluated) {
    EXPECT_GT(e.cycles[app], 0.0);
    EXPECT_GT(e.energy_j[app], 0.0);
    EXPECT_GT(e.area_mm2, 0.0);
    EXPECT_DOUBLE_EQ(e.objective_value, e.cycles[app]);  // incumbent metric
    ASSERT_EQ(e.ppa(options.app).size(), 3u);
  }

  // Reference frozen after the seed batch: covers (with 20% pad) every seed
  // point, and the journal's hypervolume column is monotone non-decreasing
  // with a positive final value.
  ASSERT_EQ(result.hv_reference.size(), 3u);
  for (int i = 0; i < 10; ++i) {
    const auto p = result.evaluated[static_cast<std::size_t>(i)].ppa(options.app);
    for (std::size_t d = 0; d < 3; ++d) EXPECT_LT(p[d], result.hv_reference[d]);
  }
  ASSERT_GE(result.journal.rounds.size(), 2u);
  double prev = 0.0;
  for (const auto& r : result.journal.rounds) {
    EXPECT_GE(r.hypervolume, prev * (1.0 - 1e-12));
    prev = r.hypervolume;
  }
  EXPECT_GT(result.journal.rounds.back().hypervolume, 0.0);
  EXPECT_DOUBLE_EQ(
      result.journal.rounds.back().hypervolume,
      hypervolume(result.ppa_points(options.app), result.hv_reference));

  // The front is non-empty and mutually non-dominated.
  const auto front = result.pareto_ppa(options.app);
  EXPECT_GE(front.size(), 1u);
  std::vector<std::vector<double>> front_points;
  for (std::size_t idx : front) {
    front_points.push_back(result.evaluated[idx].ppa(options.app));
  }
  EXPECT_EQ(pareto_front(front_points).size(), front_points.size());
}

TEST(Search, PpaModeRandomBaselineRecordsHypervolume) {
  SearchOptions options = smoke_options();
  options.objective = Objective::kCyclesEnergyArea;
  options.max_simulations = 16;
  options.initial_samples = 8;
  options.batch_size = 8;
  const SearchResult result = random_search(options);
  EXPECT_EQ(result.evaluated.size(), 16u);
  ASSERT_EQ(result.hv_reference.size(), 3u);
  ASSERT_FALSE(result.journal.rounds.empty());
  EXPECT_GT(result.journal.rounds.back().hypervolume, 0.0);
}

TEST(Search, SingleObjectiveModeRejectsPpaFront) {
  const SearchResult result = search(smoke_options());
  EXPECT_TRUE(result.hv_reference.empty());
  for (const auto& r : result.journal.rounds) {
    EXPECT_DOUBLE_EQ(r.hypervolume, 0.0);
  }
  // Energy/area are recorded even in single-objective mode (the eval
  // results carry them for free), so pareto_ppa still works for the target
  // app — but the untargeted apps' columns stay empty.
  for (const auto& e : result.evaluated) {
    EXPECT_GT(e.energy_j[static_cast<std::size_t>(kernels::App::kStream)], 0.0);
    EXPECT_DOUBLE_EQ(
        e.energy_j[static_cast<std::size_t>(kernels::App::kMiniBude)], 0.0);
  }
  EXPECT_THROW(result.pareto_ppa(kernels::App::kMiniBude), InvariantError);
}

TEST(Search, SingleAppModeRejectsPareto) {
  const SearchResult result = search(smoke_options());
  EXPECT_THROW(
      result.pareto_between(kernels::App::kStream, kernels::App::kMiniBude),
      InvariantError);
}

TEST(Search, PersistWritesStateAndResumes) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_dse_state";
  std::filesystem::remove_all(dir);
  setenv("ADSE_CACHE_DIR", dir.string().c_str(), 1);

  SearchOptions options = smoke_options();
  options.label = "resume";
  options.persist = true;
  options.max_simulations = 20;
  const SearchResult first = search(options);
  EXPECT_TRUE(file_exists(evaluations_path("resume")));
  EXPECT_TRUE(file_exists(journal_path("resume")));
  EXPECT_EQ(first.journal_file, journal_path("resume"));
  const Journal on_disk = load_journal(first.journal_file);
  EXPECT_EQ(on_disk.rounds.size(), first.journal.rounds.size());

  // A wider budget resumes from the persisted evaluations: the first 20
  // evaluations are byte-identical, only the rest is new work.
  options.max_simulations = 26;
  const SearchResult second = search(options);
  ASSERT_EQ(second.evaluated.size(), 26u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(config::feature_vector(second.evaluated[i].config),
              config::feature_vector(first.evaluated[i].config));
    EXPECT_DOUBLE_EQ(second.evaluated[i].objective_value,
                     first.evaluated[i].objective_value);
  }

  unsetenv("ADSE_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Search, CorruptStateIsDroppedWithFreshStart) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_dse_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  setenv("ADSE_CACHE_DIR", dir.string().c_str(), 1);

  SearchOptions options = smoke_options();
  options.label = "corrupt";
  options.persist = true;
  options.max_simulations = 14;
  {
    std::ofstream f(evaluations_path("corrupt"));
    f << "not,a,dse,state\n1,2,3,4\n";
  }
  const SearchResult result = search(options);  // must not throw
  EXPECT_EQ(result.evaluated.size(), 14u);

  unsetenv("ADSE_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Search, RandomSearchSpendsSameBudget) {
  SearchOptions options = smoke_options();
  const SearchResult guided = search(options);
  const SearchResult random = random_search(options);
  EXPECT_EQ(random.evaluated.size(), guided.evaluated.size());
  for (const auto& e : random.evaluated) {
    EXPECT_TRUE(config::is_valid(e.config));
    EXPECT_GT(e.objective_value, 0.0);
  }
  // Random rounds carry no surrogate telemetry.
  for (const auto& r : random.journal.rounds) {
    EXPECT_DOUBLE_EQ(r.surrogate_oob_mae, 0.0);
    EXPECT_DOUBLE_EQ(r.acquisition_entropy, 0.0);
  }
}

TEST(Search, RejectsDegenerateOptions) {
  SearchOptions options = smoke_options();
  options.max_simulations = 1;
  EXPECT_THROW(search(options), InvariantError);
  options = smoke_options();
  options.batch_size = 0;
  EXPECT_THROW(search(options), InvariantError);
  options = smoke_options();
  options.initial_samples = 1;
  EXPECT_THROW(random_search(options), InvariantError);
  options = smoke_options();
  options.exploit_fraction = -0.1;
  EXPECT_THROW(search(options), InvariantError);
  options = smoke_options();
  options.exploit_fraction = 1.5;
  EXPECT_THROW(search(options), InvariantError);
}

TEST(Search, PureGreedyAndPureAcquisitionBatchesBothRun) {
  SearchOptions greedy = smoke_options();
  greedy.exploit_fraction = 1.0;
  EXPECT_EQ(search(greedy).evaluated.size(),
            static_cast<std::size_t>(greedy.max_simulations));
  SearchOptions acquisition_only = smoke_options();
  acquisition_only.exploit_fraction = 0.0;
  EXPECT_EQ(search(acquisition_only).evaluated.size(),
            static_cast<std::size_t>(acquisition_only.max_simulations));
}

}  // namespace
}  // namespace adse::dse
