#include "common/csv.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"

namespace adse {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Process-unique: ctest runs each case as its own process in parallel,
    // so a shared directory would race with concurrent TearDowns.
    dir_ = std::filesystem::temp_directory_path() /
           ("adse_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, RoundTrip) {
  CsvTable t;
  t.columns = {"a", "b", "c"};
  t.rows = {{1.0, 2.5, -3.0}, {4.0, 0.0, 1e-9}};
  write_csv(path("t.csv"), t);
  const CsvTable back = read_csv(path("t.csv"));
  EXPECT_EQ(back.columns, t.columns);
  ASSERT_EQ(back.num_rows(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(back.rows[r][c], t.rows[r][c]);
    }
  }
}

TEST_F(CsvTest, RoundTripsExtremeDoubles) {
  CsvTable t;
  t.columns = {"x"};
  t.rows = {{1.0 / 3.0}, {1e308}, {5e-324}, {-0.1234567890123456}};
  write_csv(path("x.csv"), t);
  const CsvTable back = read_csv(path("x.csv"));
  for (std::size_t r = 0; r < t.rows.size(); ++r) {
    EXPECT_DOUBLE_EQ(back.rows[r][0], t.rows[r][0]);
  }
}

TEST_F(CsvTest, ColumnAccess) {
  CsvTable t;
  t.columns = {"first", "second"};
  t.rows = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(t.column_index("second"), 1u);
  EXPECT_EQ(t.column("second"), (std::vector<double>{10, 20, 30}));
  EXPECT_THROW(t.column_index("missing"), InvariantError);
}

TEST_F(CsvTest, EmptyTableRoundTrip) {
  CsvTable t;
  t.columns = {"only_header"};
  write_csv(path("empty.csv"), t);
  const CsvTable back = read_csv(path("empty.csv"));
  EXPECT_EQ(back.columns.size(), 1u);
  EXPECT_EQ(back.num_rows(), 0u);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv(path("nope.csv")), InvariantError);
}

TEST_F(CsvTest, ReadRaggedRowThrows) {
  std::ofstream f(path("ragged.csv"));
  f << "a,b\n1,2\n3\n";
  f.close();
  EXPECT_THROW(read_csv(path("ragged.csv")), InvariantError);
}

TEST_F(CsvTest, ReadNonNumericThrows) {
  std::ofstream f(path("alpha.csv"));
  f << "a\nhello\n";
  f.close();
  EXPECT_THROW(read_csv(path("alpha.csv")), InvariantError);
}

TEST_F(CsvTest, ReadEmptyFileThrows) {
  std::ofstream f(path("zero.csv"));
  f.close();
  EXPECT_THROW(read_csv(path("zero.csv")), InvariantError);
}

TEST_F(CsvTest, SkipsBlankLines) {
  std::ofstream f(path("blank.csv"));
  f << "a\n1\n\n2\n  \n";
  f.close();
  const CsvTable t = read_csv(path("blank.csv"));
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(CsvTest, WriteRaggedRowThrows) {
  CsvTable t;
  t.columns = {"a", "b"};
  t.rows = {{1.0}};
  EXPECT_THROW(write_csv(path("bad.csv"), t), InvariantError);
}

TEST_F(CsvTest, FileExists) {
  EXPECT_FALSE(file_exists(path("q.csv")));
  CsvTable t;
  t.columns = {"a"};
  write_csv(path("q.csv"), t);
  EXPECT_TRUE(file_exists(path("q.csv")));
  EXPECT_FALSE(file_exists(dir_.string()));  // a directory is not a file
}

TEST_F(CsvTest, AtomicWriteRoundTripsAndLeavesNoTempFile) {
  CsvTable t;
  t.columns = {"a", "b"};
  t.rows = {{1.0, 2.0}, {3.0, 4.0}};
  write_csv_atomic(path("atomic.csv"), t);
  const CsvTable back = read_csv(path("atomic.csv"));
  EXPECT_EQ(back.columns, t.columns);
  EXPECT_EQ(back.rows, t.rows);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(entry.path().filename().string(), "atomic.csv");
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(CsvTest, AtomicWriteReplacesExistingFile) {
  CsvTable first;
  first.columns = {"a"};
  first.rows = {{1.0}};
  write_csv_atomic(path("r.csv"), first);
  CsvTable second;
  second.columns = {"a"};
  second.rows = {{2.0}, {3.0}};
  write_csv_atomic(path("r.csv"), second);
  EXPECT_EQ(read_csv(path("r.csv")).num_rows(), 2u);
}

TEST_F(CsvTest, HeaderWhitespaceTrimmed) {
  std::ofstream f(path("ws.csv"));
  f << " a , b \n1,2\n";
  f.close();
  const CsvTable t = read_csv(path("ws.csv"));
  EXPECT_EQ(t.columns[0], "a");
  EXPECT_EQ(t.columns[1], "b");
}

}  // namespace
}  // namespace adse
