#include "eval/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "config/baselines.hpp"
#include "eval/fused.hpp"
#include "eval/result_store.hpp"
#include "eval/trace_cache.hpp"
#include "ml/forest.hpp"
#include "sim/simulation.hpp"
#include "sim/stats_report.hpp"

namespace adse::eval {
namespace {

/// Deterministic fake backend that counts how many times it actually runs —
/// the probe for the service's dedup guarantees.
class CountingBackend final : public Backend {
 public:
  explicit CountingBackend(std::string key = "mock") : key_(std::move(key)) {}

  const std::string& key() const override { return key_; }
  bool needs_trace() const override { return false; }

  sim::RunResult run(const config::CpuConfig& config, kernels::App app,
                     const isa::Program&) const override {
    runs_.fetch_add(1, std::memory_order_relaxed);
    // Widen the race window so concurrent identical requests really overlap.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sim::RunResult result;
    result.core.cycles = 1000 + static_cast<std::uint64_t>(app) * 10 +
                         static_cast<std::uint64_t>(config.core.rob_size);
    result.core.retired = 17;
    result.mem.l1_hits = 5;
    return result;
  }

  std::uint64_t runs() const { return runs_.load(); }

 private:
  std::string key_;
  mutable std::atomic<std::uint64_t> runs_{0};
};

EvalRequest stream_request() {
  return {config::thunderx2_baseline(), kernels::App::kStream};
}

/// Hermetic service options: explicit thread count, optional on-disk store.
EvalOptions hermetic(int threads, std::string store_path = {}) {
  EvalOptions options;
  options.threads = threads;
  options.store_path = std::move(store_path);
  return options;
}

TEST(EvalService, ConcurrentIdenticalRequestsRunBackendOnce) {
  EvalService service(hermetic(4));
  CountingBackend backend;
  const EvalRequest request = stream_request();

  constexpr int kThreads = 8;
  std::vector<EvalResult> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          service.evaluate_one(request, &backend);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(backend.runs(), 1u);
  for (const EvalResult& r : results) {
    EXPECT_EQ(r.cycles(), results.front().cycles());
    EXPECT_EQ(r.run.core.retired, 17u);
    EXPECT_EQ(r.run.app, "stream");
    EXPECT_EQ(r.run.config_name, request.config.name);
  }
  const EvalStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.backend_runs, 1u);
  EXPECT_EQ(stats.memo_hits + stats.inflight_joins,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(EvalService, BatchDuplicatesCollapse) {
  EvalService service(hermetic(4));
  CountingBackend backend;
  const std::vector<EvalRequest> requests(12, stream_request());

  EvalPolicy policy;
  policy.backend = &backend;
  const auto results = service.evaluate(requests, policy);
  ASSERT_EQ(results.size(), 12u);
  EXPECT_EQ(backend.runs(), 1u);
  for (const EvalResult& r : results) {
    EXPECT_EQ(r.cycles(), results.front().cycles());
  }
}

TEST(EvalService, MemoServesRepeats) {
  EvalService service(hermetic(1));
  CountingBackend backend;

  const EvalResult first = service.evaluate_one(stream_request(), &backend);
  const EvalResult again = service.evaluate_one(stream_request(), &backend);
  EXPECT_EQ(first.source, ResultSource::kBackend);
  EXPECT_EQ(again.source, ResultSource::kMemo);
  EXPECT_EQ(again.cycles(), first.cycles());
  EXPECT_EQ(backend.runs(), 1u);
}

TEST(EvalService, DistinctPointsAndBackendsDoNotAlias) {
  EvalService service(hermetic(2));
  CountingBackend a("mock-a");
  CountingBackend b("mock-b");

  EvalRequest stream = stream_request();
  EvalRequest bude{config::thunderx2_baseline(), kernels::App::kMiniBude};
  service.evaluate_one(stream, &a);
  service.evaluate_one(bude, &a);   // different app: fresh run
  service.evaluate_one(stream, &b); // different backend: fresh run
  EXPECT_EQ(a.runs(), 2u);
  EXPECT_EQ(b.runs(), 1u);
  EXPECT_EQ(service.stats().backend_runs, 3u);
}

TEST(EvalService, MatchesDirectSimulation) {
  EvalService service(hermetic(1));
  const config::CpuConfig cpu = config::thunderx2_baseline();

  const sim::RunResult direct = sim::simulate_app(cpu, kernels::App::kStream);
  const EvalResult served = service.evaluate_one(stream_request());
  EXPECT_EQ(served.run.core.cycles, direct.core.cycles);
  EXPECT_EQ(served.run.core.retired, direct.core.retired);
  EXPECT_EQ(served.run.mem.l1_hits, direct.mem.l1_hits);
  EXPECT_EQ(served.run.mem.ram_requests, direct.mem.ram_requests);
  EXPECT_EQ(served.run.app, direct.app);
  EXPECT_EQ(served.run.config_name, direct.config_name);

  // A memo hit reproduces the same result, labels included.
  const EvalResult memo = service.evaluate_one(stream_request());
  EXPECT_EQ(memo.source, ResultSource::kMemo);
  EXPECT_EQ(memo.run.core.cycles, direct.core.cycles);
  EXPECT_EQ(memo.run.app, direct.app);
  EXPECT_EQ(memo.run.config_name, direct.config_name);
}

TEST(EvalService, StoreReuseAcrossServices) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_eval_reuse";
  std::filesystem::remove_all(dir);
  const std::string store = (dir / "eval_store.bin").string();

  CountingBackend first_backend;
  {
    EvalService service(hermetic(1, store));
    service.evaluate_one(stream_request(), &first_backend);
    EXPECT_EQ(service.stats().store_appended, 1u);
  }
  EXPECT_EQ(first_backend.runs(), 1u);

  // A new service on the same store serves the point from disk — zero
  // backend runs, identical counters.
  CountingBackend second_backend;
  EvalService warm(hermetic(1, store));
  const EvalResult served = warm.evaluate_one(stream_request(), &second_backend);
  EXPECT_EQ(served.source, ResultSource::kStore);
  EXPECT_EQ(second_backend.runs(), 0u);
  EXPECT_EQ(served.run.core.retired, 17u);
  EXPECT_EQ(served.run.mem.l1_hits, 5u);
  const EvalStats stats = warm.stats();
  EXPECT_EQ(stats.store_loaded, 1u);
  EXPECT_EQ(stats.store_hits, 1u);
  EXPECT_EQ(stats.backend_runs, 0u);

  std::filesystem::remove_all(dir);
}

TEST(EvalService, SurrogateBackendIsNotPersisted) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_eval_surr";
  std::filesystem::remove_all(dir);
  const std::string store = (dir / "eval_store.bin").string();

  // Tiny forests fitted on two synthetic points, targets in log(cycles).
  ml::Dataset data;
  for (std::size_t f = 0; f < config::kNumParams; ++f) {
    data.feature_names.push_back("f" + std::to_string(f));
  }
  const auto lo = config::feature_vector(config::thunderx2_baseline());
  const auto hi = config::feature_vector(config::a64fx_like());
  data.add_row({lo.begin(), lo.end()}, std::log(50000.0));
  data.add_row({hi.begin(), hi.end()}, std::log(90000.0));

  ml::ForestOptions options;
  options.num_trees = 3;
  std::array<ml::RandomForestRegressor, kernels::kNumApps> forests{
      ml::RandomForestRegressor(options), ml::RandomForestRegressor(options),
      ml::RandomForestRegressor(options), ml::RandomForestRegressor(options)};
  for (auto& forest : forests) forest.fit(data);
  const SurrogateForestBackend surrogate(std::move(forests), true);
  EXPECT_FALSE(surrogate.persistable());
  EXPECT_FALSE(surrogate.needs_trace());

  EvalService service(hermetic(1, store));
  const EvalResult predicted =
      service.evaluate_one(stream_request(), &surrogate);
  EXPECT_GE(predicted.cycles(), 1u);
  EXPECT_EQ(predicted.source, ResultSource::kBackend);
  // Model output must never reach the on-disk store.
  EXPECT_EQ(service.stats().store_appended, 0u);
  // But it is memoised like any other backend.
  EXPECT_EQ(service.evaluate_one(stream_request(), &surrogate).source,
            ResultSource::kMemo);

  std::filesystem::remove_all(dir);
}

/// Makes `model` ready for kStream by feeding `n` distinct synthetic
/// observations (rob_size varied; cycles = analytical bound × residual(i)).
/// Pick min_observations == n so the single refit trains on every row.
void train_stream(FusedModel& model, int n, double (*residual)(int)) {
  for (int i = 0; i < n; ++i) {
    config::CpuConfig cfg = config::thunderx2_baseline();
    cfg.core.rob_size = 64 + 16 * i;
    const double bound =
        model.predict(kernels::App::kStream, cfg).analytical_min;
    model.observe(kernels::App::kStream, cfg, bound * std::exp(residual(i)));
  }
}

TEST(EvalService, FusedBackendIsNotPersisted) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_eval_fused";
  std::filesystem::remove_all(dir);
  const std::string store = (dir / "eval_store.bin").string();

  FusedOptions options;
  options.forest.num_trees = 3;
  options.min_observations = 6;
  FusedModel model(options);
  train_stream(model, 6,
               [](int i) { return 0.5 + 0.01 * static_cast<double>(i); });
  EXPECT_GE(model.refits(), 1u);
  const FusedBackend fused(model);
  EXPECT_FALSE(fused.persistable());
  EXPECT_FALSE(fused.needs_trace());

  {
    EvalService service(hermetic(1, store));
    const EvalResult predicted =
        service.evaluate_one(stream_request(), &fused);
    EXPECT_GE(predicted.cycles(), 1u);
    EXPECT_EQ(predicted.source, ResultSource::kBackend);
    // Model output must never reach the on-disk store.
    EXPECT_EQ(service.stats().store_appended, 0u);
    // But it is memoised like any other backend.
    EXPECT_EQ(service.evaluate_one(stream_request(), &fused).source,
              ResultSource::kMemo);
    // A real simulator run of the very same point IS persisted — the store
    // now holds this (config, app) under the simulator's key only.
    service.evaluate_one(stream_request());
    EXPECT_EQ(service.stats().store_appended, 1u);
  }

  // The warm store must not satisfy fused-backend keys: the same request
  // through the fused backend runs the model afresh instead of aliasing the
  // persisted simulator record.
  EvalService warm(hermetic(1, store));
  EXPECT_EQ(warm.stats().store_loaded, 1u);
  const EvalResult served = warm.evaluate_one(stream_request(), &fused);
  EXPECT_EQ(served.source, ResultSource::kBackend);
  EXPECT_EQ(warm.stats().store_hits, 0u);
  // While the simulator-keyed request still hits the disk record.
  EXPECT_EQ(warm.evaluate_one(stream_request()).source, ResultSource::kStore);

  std::filesystem::remove_all(dir);
}

TEST(EvalService, RoutedEvaluationGatesOnResidualSpread) {
  // Two training clusters for kStream: small-ROB configs carry an exactly
  // constant residual (every tree's leaves agree there → spread ~0); the
  // large-ROB cluster's residuals are seeded noise (bootstrap resamples
  // disagree → positive spread). The routing threshold is then calibrated
  // between the two measured spreads, making the gate's decision — answer
  // the confident query from the model, simulate the uncertain one —
  // deterministic.
  FusedOptions options;
  options.forest.num_trees = 12;
  options.probe_every = 0;  // no probe clock: pure threshold routing
  options.round_size = 8;
  options.min_observations = 32;
  FusedModel model(options);
  Rng noise(7);
  for (int i = 0; i < 32; ++i) {
    config::CpuConfig cfg = config::thunderx2_baseline();
    const bool low_cluster = i < 16;
    cfg.core.rob_size = low_cluster ? 32 + 2 * i : 448 + 2 * i;
    const double bound =
        model.predict(kernels::App::kStream, cfg).analytical_min;
    const double residual = low_cluster ? 0.5 : 0.5 + noise.uniform01();
    model.observe(kernels::App::kStream, cfg, bound * std::exp(residual));
  }
  ASSERT_GE(model.refits(), 1u);

  config::CpuConfig confident = config::thunderx2_baseline();
  confident.core.rob_size = 49;  // inside the constant-residual cluster
  config::CpuConfig uncertain = config::thunderx2_baseline();
  uncertain.core.rob_size = 497;  // inside the noisy cluster
  const FusedPrediction p_lo = model.predict(kernels::App::kStream, confident);
  const FusedPrediction p_hi = model.predict(kernels::App::kStream, uncertain);
  ASSERT_TRUE(p_lo.ready);
  ASSERT_TRUE(p_hi.ready);
  ASSERT_LT(p_lo.spread, p_hi.spread);
  model.set_threshold((p_lo.spread + p_hi.spread) / 2.0);

  EvalService service(hermetic(1));
  CountingBackend sim;
  const std::vector<EvalRequest> requests = {
      {confident, kernels::App::kStream}, {uncertain, kernels::App::kStream}};
  EvalPolicy routed;
  routed.backend = &sim;
  routed.fused = &model;
  const auto results = service.evaluate(requests, routed);
  ASSERT_EQ(results.size(), 2u);

  // Only the uncertain config paid for a backend run; the confident one was
  // answered by the model, and the counters record the split.
  EXPECT_EQ(sim.runs(), 1u);
  EXPECT_EQ(service.metrics().counter("eval.routed_surrogate").value(), 1u);
  EXPECT_EQ(service.metrics().counter("eval.routed_sim").value(), 1u);
  EXPECT_EQ(service.metrics().counter("eval.fused_probes").value(), 0u);
  // The surrogate answer matches the model's direct prediction; the sim
  // answer matches the counting backend's formula.
  EXPECT_EQ(results[0].cycles(),
            static_cast<std::uint64_t>(std::llround(p_lo.cycles)));
  EXPECT_EQ(results[1].cycles(), 1000 + 497u);

  // Threshold 0 routes nothing: the same batch re-runs entirely on the
  // simulator (memo-served here, since the points are already cached).
  model.set_threshold(0.0);
  const auto all_sim = service.evaluate(requests, routed);
  EXPECT_EQ(service.metrics().counter("eval.routed_surrogate").value(), 1u);
  EXPECT_EQ(all_sim[1].cycles(), results[1].cycles());
}

// --- store format compatibility ---------------------------------------------

StoreRecord sample_record(int app, double feature0, std::uint64_t cycles) {
  StoreRecord r;
  r.backend_tag = ResultStore::tag("sim");
  r.app = app;
  r.features = config::feature_vector(config::thunderx2_baseline());
  r.features[0] = feature0;
  r.core.cycles = cycles;
  r.core.retired = 42;
  r.core.sve_lane_ops = 7;  // v2-only counter: dropped by a v1 writer
  r.mem.l1_hits = 9;
  r.mem.l1_reads = 6;  // v2-only counter
  r.power.dynamic_j = 1.5e-6;
  r.power.leakage_j = 2.5e-7;
  r.power.area_mm2 = 3.25;
  return r;
}

TEST(ResultStoreCompat, V1FilesLoadCleanlyWithNanPower) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_store_v1";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "eval_store.bin").string();

  ResultStore::write_legacy_v1(path,
                               {sample_record(0, 128, 1000),
                                sample_record(1, 256, 2000)});

  ResultStore store(path);
  ASSERT_EQ(store.loaded().size(), 2u);
  const StoreRecord& a = store.loaded()[0];
  EXPECT_EQ(a.core.cycles, 1000u);
  EXPECT_EQ(a.core.retired, 42u);
  EXPECT_EQ(a.mem.l1_hits, 9u);
  // v2-only counters and the power block do not exist in v1: zeros / NaN.
  EXPECT_EQ(a.core.sve_lane_ops, 0u);
  EXPECT_EQ(a.mem.l1_reads, 0u);
  EXPECT_FALSE(a.power.valid());

  std::filesystem::remove_all(dir);
}

TEST(ResultStoreCompat, V1StoreMigratesToV2InPlace) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_store_mig";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "eval_store.bin").string();

  ResultStore::write_legacy_v1(path, {sample_record(0, 128, 1000)});
  { ResultStore migrating(path); }  // open rewrites the file as v2

  // The migrated file must now carry the v2 magic and fixed record size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[8] = {};
  ASSERT_EQ(std::fread(magic, 1, 8, f), 8u);
  std::fclose(f);
  EXPECT_EQ(std::string(magic, 8), "ADSEVAL2");
  // Header = 8-byte magic + 3 uint32 fields; then one fixed-size v2 record.
  EXPECT_EQ(std::filesystem::file_size(path),
            8 + 3 * sizeof(std::uint32_t) + ResultStore::record_bytes());

  // And a mixed-version life cycle round-trips: append a v2 record to the
  // migrated store, reopen, and both generations coexist.
  {
    ResultStore store(path);
    ASSERT_EQ(store.loaded().size(), 1u);
    EXPECT_FALSE(store.loaded()[0].power.valid());
    store.append(sample_record(2, 512, 3000));
  }
  ResultStore reopened(path);
  ASSERT_EQ(reopened.loaded().size(), 2u);
  EXPECT_FALSE(reopened.loaded()[0].power.valid());  // migrated, still NaN
  const StoreRecord& fresh = reopened.loaded()[1];
  ASSERT_TRUE(fresh.power.valid());
  EXPECT_DOUBLE_EQ(fresh.power.dynamic_j, 1.5e-6);
  EXPECT_DOUBLE_EQ(fresh.power.leakage_j, 2.5e-7);
  EXPECT_DOUBLE_EQ(fresh.power.area_mm2, 3.25);
  EXPECT_EQ(fresh.core.sve_lane_ops, 7u);
  EXPECT_EQ(fresh.mem.l1_reads, 6u);

  std::filesystem::remove_all(dir);
}

TEST(ResultStoreCompat, ServiceRecomputesPowerForMigratedRecords) {
  const auto dir = std::filesystem::temp_directory_path() / "adse_store_pw";
  std::filesystem::remove_all(dir);
  const std::string store_path = (dir / "eval_store.bin").string();

  // Warm a v2 store with one real simulation, then strip it back to v1.
  {
    EvalService service(hermetic(1, store_path));
    service.evaluate_one(stream_request());
  }
  std::vector<StoreRecord> records;
  {
    ResultStore store(store_path);
    records = store.loaded();
  }
  ASSERT_EQ(records.size(), 1u);
  ASSERT_TRUE(records[0].power.valid());
  const double true_area = records[0].power.area_mm2;
  ResultStore::write_legacy_v1(store_path, records);

  // A service warming from the v1 file serves the run with power
  // recomputed: area/leakage are exact functions of config and cycles.
  EvalService warm(hermetic(1, store_path));
  const EvalResult served = warm.evaluate_one(stream_request());
  EXPECT_EQ(served.source, ResultSource::kStore);
  ASSERT_TRUE(served.run.power.valid());
  EXPECT_DOUBLE_EQ(served.run.power.area_mm2, true_area);
  EXPECT_GT(served.run.power.leakage_j, 0.0);

  std::filesystem::remove_all(dir);
}

TEST(EvalService, ProxyKeyEncodesFidelityKnobs) {
  const HardwareProxyBackend defaults;
  sim::ProxyOptions tweaked;
  tweaked.mshr_entries = 4;
  const HardwareProxyBackend other(tweaked);
  EXPECT_NE(defaults.key(), other.key());
  EXPECT_EQ(defaults.key(), HardwareProxyBackend().key());
}

TEST(EvalService, SummaryLineReportsFreshRuns) {
  EvalService service(hermetic(1));
  CountingBackend backend;
  service.evaluate_one(stream_request(), &backend);
  service.evaluate_one(stream_request(), &backend);
  const std::string line = service.summary_line();
  EXPECT_NE(line.find("[eval] fresh simulator runs: 1"), std::string::npos);
  EXPECT_NE(line.find("memo hits: 1"), std::string::npos);
  const std::string table = service.cache_table();
  EXPECT_NE(table.find("requests served"), std::string::npos);
}

TEST(TraceCacheCounters, HitsAndBuilds) {
  TraceCache cache;
  const isa::Program& first = cache.get(kernels::App::kStream, 256);
  const isa::Program& again = cache.get(kernels::App::kStream, 256);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  cache.get(kernels::App::kStream, 512);
  EXPECT_EQ(cache.builds(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest -j runs each case as its own process; the dir must be unique per
    // case or concurrently scheduled cases would clobber each other's store.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("adse_eval_store_") + info->name());
    std::filesystem::remove_all(dir_);
    path_ = (dir_ / "store.bin").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static StoreRecord record(std::uint64_t seed) {
    StoreRecord r;
    r.backend_tag = ResultStore::tag("sim");
    r.app = static_cast<std::int32_t>(seed % 4);
    for (std::size_t f = 0; f < r.features.size(); ++f) {
      r.features[f] = static_cast<double>(seed * 100 + f);
    }
    r.core.cycles = 1'000'000 + seed;
    r.core.retired = 2'000 + seed;
    r.core.rs_wakeups = 33 * seed;
    r.mem.l1_hits = 7 * seed;
    r.mem.ram_requests = seed;
    return r;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ResultStoreTest, RoundTrip) {
  {
    ResultStore store(path_);
    EXPECT_TRUE(store.loaded().empty());
    for (std::uint64_t i = 1; i <= 3; ++i) store.append(record(i));
    EXPECT_EQ(store.appended(), 3u);
  }
  ResultStore reopened(path_);
  ASSERT_EQ(reopened.loaded().size(), 3u);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const StoreRecord expected = record(i);
    const StoreRecord& got = reopened.loaded()[i - 1];
    EXPECT_EQ(got.backend_tag, expected.backend_tag);
    EXPECT_EQ(got.app, expected.app);
    EXPECT_EQ(got.features, expected.features);
    EXPECT_EQ(got.core.cycles, expected.core.cycles);
    EXPECT_EQ(got.core.retired, expected.core.retired);
    EXPECT_EQ(got.core.rs_wakeups, expected.core.rs_wakeups);
    EXPECT_EQ(got.mem.l1_hits, expected.mem.l1_hits);
    EXPECT_EQ(got.mem.ram_requests, expected.mem.ram_requests);
  }
}

TEST_F(ResultStoreTest, TornTailIsTruncatedNotFatal) {
  {
    ResultStore store(path_);
    store.append(record(1));
    store.append(record(2));
  }
  // A writer killed mid-append can only tear the tail record.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 5);

  ResultStore recovered(path_);
  ASSERT_EQ(recovered.loaded().size(), 1u);
  EXPECT_EQ(recovered.loaded()[0].core.cycles, record(1).core.cycles);
  // The torn bytes were truncated away; appending works again and the file
  // is back to exactly header + two intact records.
  recovered.append(record(3));
  EXPECT_EQ(std::filesystem::file_size(path_), full);

  ResultStore reopened(path_);
  EXPECT_EQ(reopened.loaded().size(), 2u);
  EXPECT_EQ(reopened.loaded()[1].core.cycles, record(3).core.cycles);
}

TEST_F(ResultStoreTest, CorruptRecordStopsLoadAtLastIntact) {
  {
    ResultStore store(path_);
    store.append(record(1));
    store.append(record(2));
  }
  // Flip one byte inside the *last* record's payload: its checksum fails and
  // the loader keeps everything before it.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const long offset = -static_cast<long>(ResultStore::record_bytes() / 2);
    std::fseek(f, offset, SEEK_END);
    const int byte = std::fgetc(f);
    std::fseek(f, offset, SEEK_END);
    std::fputc(byte ^ 0xff, f);
    std::fclose(f);
  }
  ResultStore recovered(path_);
  EXPECT_EQ(recovered.loaded().size(), 1u);
}

TEST_F(ResultStoreTest, ForeignFileIsReplacedNotTrusted) {
  std::filesystem::create_directories(dir_);
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not an eval store", f);
    std::fclose(f);
  }
  ResultStore store(path_);
  EXPECT_TRUE(store.loaded().empty());
  store.append(record(4));

  ResultStore reopened(path_);
  ASSERT_EQ(reopened.loaded().size(), 1u);
  EXPECT_EQ(reopened.loaded()[0].core.cycles, record(4).core.cycles);
}

TEST_F(ResultStoreTest, TagIsStableAndDiscriminates) {
  EXPECT_EQ(ResultStore::tag("sim"), ResultStore::tag("sim"));
  EXPECT_NE(ResultStore::tag("sim"), ResultStore::tag("proxy"));
}

}  // namespace
}  // namespace adse::eval
