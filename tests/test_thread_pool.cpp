#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/require.hpp"

namespace adse {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(500);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotAbandonOtherIterations) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first fails");
      done++;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(done.load(), 99);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(20, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvariantError);
}

TEST(ThreadPool, SizeReportsWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace adse
