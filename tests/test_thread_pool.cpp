#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/require.hpp"

namespace adse {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(500);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotAbandonOtherIterations) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first fails");
      done++;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(done.load(), 99);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(20, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 100);
}

// Campaign stragglers: a slow (big-ROB, high-VL) config must not block a
// stripe of other iterations behind it. With dynamic (atomic-counter)
// chunking, one executor camping on index 0 leaves every other index to the
// remaining executors; with static contiguous partitioning, the indices
// striped to the stuck executor would never run and this test would hang.
// Index 0 only returns once all other iterations are done, so the test
// deadlocks (and times out) under any scheduling that isn't work-stealing.
TEST(ThreadPool, DynamicChunkingDoesNotStragglerBlock) {
  constexpr std::size_t kCount = 64;
  ThreadPool pool(2);  // 2 workers + the participating caller
  std::mutex m;
  std::condition_variable cv;
  std::size_t others_done = 0;
  pool.parallel_for(kCount, [&](std::size_t i) {
    std::unique_lock<std::mutex> lock(m);
    if (i == 0) {
      const bool all_done = cv.wait_for(
          lock, std::chrono::seconds(60),
          [&] { return others_done == kCount - 1; });
      EXPECT_TRUE(all_done) << "scheduler straggler-blocked " << kCount - 1
                            << " iterations behind a slow one ("
                            << others_done << " completed)";
    } else {
      others_done++;
      cv.notify_all();
    }
  });
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvariantError);
}

TEST(ThreadPool, SizeReportsWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace adse
