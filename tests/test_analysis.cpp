#include <gtest/gtest.h>

#include <cmath>

#include "analysis/speedup.hpp"
#include "analysis/surrogate_eval.hpp"
#include "analysis/validation.hpp"
#include "analysis/vectorisation.hpp"
#include "campaign/campaign.hpp"
#include "config/param_space.hpp"
#include "common/require.hpp"

namespace adse::analysis {
namespace {

/// A synthetic campaign table where stream cycles halve with each VL doubling
/// and everything else is flat.
CsvTable synthetic_table() {
  CsvTable t;
  t.columns = campaign::feature_names();
  for (kernels::App app : kernels::all_apps()) {
    t.columns.push_back(campaign::cycles_column(app));
  }
  const std::size_t vl_col =
      static_cast<std::size_t>(config::ParamId::kVectorLength);
  const std::size_t bw_col =
      static_cast<std::size_t>(config::ParamId::kLoadBandwidth);
  const std::size_t rob_col = static_cast<std::size_t>(config::ParamId::kRobSize);
  for (int vl : {128, 256, 512, 1024, 2048}) {
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<double> row(t.columns.size(), 1.0);
      row[vl_col] = vl;
      row[bw_col] = (rep % 2 == 0) ? 512 : 16;  // half pass the Fig-6 filter
      row[rob_col] = 8 + rep * 120;
      const double stream = 128000.0 / vl;
      row[campaign::feature_names().size() + 0] = stream;
      row[campaign::feature_names().size() + 1] = 500.0;
      row[campaign::feature_names().size() + 2] = 700.0;
      row[campaign::feature_names().size() + 3] = 900.0;
      t.rows.push_back(std::move(row));
    }
  }
  return t;
}

TEST(Speedup, BinnedSpeedupComputesRatios) {
  const CsvTable t = synthetic_table();
  const auto curves = binned_speedup(t, config::ParamId::kVectorLength,
                                     {128, 256, 512, 1024, 2048, 4096});
  const auto& stream = curves[0];
  ASSERT_EQ(stream.mean_speedup.size(), 5u);
  EXPECT_DOUBLE_EQ(stream.mean_speedup[0], 1.0);
  EXPECT_NEAR(stream.mean_speedup[1], 2.0, 1e-9);
  EXPECT_NEAR(stream.mean_speedup[4], 16.0, 1e-9);
  // Flat app has speedup 1 everywhere.
  for (double s : curves[1].mean_speedup) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Speedup, FilterDropsRows) {
  const CsvTable t = synthetic_table();
  RowFilter filter{config::ParamId::kLoadBandwidth, 256.0};
  const auto curves = binned_speedup(t, config::ParamId::kVectorLength,
                                     {128, 256, 512, 1024, 2048, 4096}, filter);
  EXPECT_EQ(curves[0].bin_rows[0], 2u);  // half the rows pass
}

TEST(Speedup, EmptyBinYieldsNaN) {
  const CsvTable t = synthetic_table();
  const auto curves = binned_speedup(t, config::ParamId::kRobSize,
                                     {8, 16, 500, 513});
  EXPECT_FALSE(std::isnan(curves[0].mean_speedup[0]));
  EXPECT_TRUE(std::isnan(curves[0].mean_speedup[2]));  // no rows >= 500
}

TEST(Speedup, GeometricMeanIsUsed) {
  // Two rows in one bin with cycles 100 and 10000: geometric mean 1000.
  CsvTable t = synthetic_table();
  t.rows.clear();
  const std::size_t vl_col =
      static_cast<std::size_t>(config::ParamId::kVectorLength);
  auto add = [&](int vl, double cycles) {
    std::vector<double> row(t.columns.size(), 1.0);
    row[vl_col] = vl;
    for (int a = 0; a < kernels::kNumApps; ++a) {
      row[campaign::feature_names().size() + static_cast<std::size_t>(a)] = cycles;
    }
    t.rows.push_back(std::move(row));
  };
  add(128, 100);
  add(128, 10000);
  add(256, 1000);
  const auto curves =
      binned_speedup(t, config::ParamId::kVectorLength, {128, 256, 512});
  EXPECT_NEAR(curves[0].mean_cycles[0], 1000.0, 1e-6);
  EXPECT_NEAR(curves[0].mean_speedup[1], 1.0, 1e-9);
}

TEST(Speedup, NeedsAtLeastTwoBins) {
  const CsvTable t = synthetic_table();
  EXPECT_THROW(binned_speedup(t, config::ParamId::kRobSize, {8, 513}),
               InvariantError);
}

TEST(Speedup, RenderContainsAppsAndBins) {
  const CsvTable t = synthetic_table();
  const auto curves = build_fig6(t);
  const std::string out = render_speedup(curves, "vector_length");
  EXPECT_NE(out.find("STREAM"), std::string::npos);
  EXPECT_NE(out.find("MiniSweep"), std::string::npos);
  EXPECT_NE(out.find("128"), std::string::npos);
}

TEST(Speedup, Fig7And8UseDocumentedBins) {
  const CsvTable t = synthetic_table();
  EXPECT_EQ(build_fig7(t)[0].bin_labels.size(), 6u);
  EXPECT_EQ(build_fig8(t)[0].bin_labels.size(), 7u);
}

TEST(SurrogateEval, TrainsAndEvaluates) {
  // Synthetic per-app dataset: cycles = f(rob, vl).
  ml::Dataset d;
  d.feature_names = campaign::feature_names();
  Rng rng(3);
  const config::ParameterSpace space;
  for (int i = 0; i < 400; ++i) {
    const auto cfg = space.sample(rng);
    const auto f = config::feature_vector(cfg);
    std::vector<double> row(f.begin(), f.end());
    const double y = 1e6 / cfg.core.vector_length_bits +
                     5e5 / cfg.core.rob_size;
    d.add_row(std::move(row), y);
  }
  const auto eval = evaluate_surrogate(kernels::App::kStream, d, 42);
  EXPECT_EQ(eval.train.num_rows(), 320u);
  EXPECT_EQ(eval.test.num_rows(), 80u);
  EXPECT_GT(eval.r2, 0.8);
  EXPECT_GT(eval.mean_accuracy_percent, 80.0);
  // VL and ROB dominate the importance ranking.
  const auto top0 = eval.ranking[0];
  const auto top1 = eval.ranking[1];
  const std::set<std::size_t> expected{
      static_cast<std::size_t>(config::ParamId::kVectorLength),
      static_cast<std::size_t>(config::ParamId::kRobSize)};
  EXPECT_TRUE(expected.count(top0));
  EXPECT_TRUE(expected.count(top1));
}

TEST(SurrogateEval, RejectsTinyDatasets) {
  ml::Dataset d;
  d.feature_names = campaign::feature_names();
  d.add_row(std::vector<double>(config::kNumParams, 1.0), 1.0);
  EXPECT_THROW(evaluate_surrogate(kernels::App::kStream, d, 1), InvariantError);
}

TEST(SurrogateEval, RenderersProduceTables) {
  ml::Dataset d;
  d.feature_names = campaign::feature_names();
  Rng rng(5);
  const config::ParameterSpace space;
  for (int i = 0; i < 100; ++i) {
    const auto cfg = space.sample(rng);
    const auto f = config::feature_vector(cfg);
    d.add_row({f.begin(), f.end()}, 1e6 / cfg.core.vector_length_bits);
  }
  std::vector<SurrogateEvaluation> evals;
  evals.push_back(evaluate_surrogate(kernels::App::kStream, d, 1));
  EXPECT_NE(render_accuracy(evals).find("STREAM"), std::string::npos);
  EXPECT_NE(render_importance(evals, 5).find("vector_length_bits"),
            std::string::npos);
}

TEST(Validation, Table1RendersFourRows) {
  const auto rows = build_table1();
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_GT(row.simulated_cycles, 0u);
    EXPECT_GT(row.hardware_cycles, 0u);
    EXPECT_GE(row.percent_difference, 0.0);
  }
  const std::string out = render_table1(rows);
  EXPECT_NE(out.find("Simulated Cycles"), std::string::npos);
  EXPECT_NE(out.find("TeaLeaf"), std::string::npos);
}

TEST(Vectorisation, Fig1SeriesCoverAppsAndVls) {
  const auto series = build_fig1({128, 2048});
  ASSERT_EQ(series.size(), 4u);
  for (const auto& s : series) {
    ASSERT_EQ(s.sve_percent.size(), 2u);
    for (double pct : s.sve_percent) {
      EXPECT_GE(pct, 0.0);
      EXPECT_LE(pct, 100.0);
    }
  }
  const std::string out = render_fig1(series);
  EXPECT_NE(out.find("VL 2048"), std::string::npos);
}

}  // namespace
}  // namespace adse::analysis
