#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/require.hpp"

namespace adse::ml {
namespace {

Dataset make_dataset(std::size_t rows) {
  Dataset d;
  d.feature_names = {"a", "b"};
  for (std::size_t i = 0; i < rows; ++i) {
    d.add_row({static_cast<double>(i), static_cast<double>(i * 2)},
              static_cast<double>(i * 10));
  }
  return d;
}

TEST(Dataset, AddRowValidatesWidth) {
  Dataset d;
  d.feature_names = {"a", "b"};
  EXPECT_THROW(d.add_row({1.0}, 0.0), InvariantError);
  EXPECT_NO_THROW(d.add_row({1.0, 2.0}, 0.0));
  EXPECT_EQ(d.num_rows(), 1u);
  EXPECT_EQ(d.num_features(), 2u);
}

TEST(Dataset, CheckDetectsRaggedRows) {
  Dataset d = make_dataset(3);
  d.x[1].push_back(99.0);
  EXPECT_THROW(d.check(), InvariantError);
}

TEST(Dataset, CheckDetectsTargetMismatch) {
  Dataset d = make_dataset(3);
  d.y.pop_back();
  EXPECT_THROW(d.check(), InvariantError);
}

TEST(Split, SizesFollowFraction) {
  const Dataset d = make_dataset(100);
  Rng rng(1);
  const auto split = train_test_split(d, 0.8, rng);
  EXPECT_EQ(split.train.num_rows(), 80u);
  EXPECT_EQ(split.test.num_rows(), 20u);
  EXPECT_EQ(split.train.feature_names, d.feature_names);
}

TEST(Split, PartitionIsExactAndDisjoint) {
  const Dataset d = make_dataset(50);
  Rng rng(2);
  const auto split = train_test_split(d, 0.7, rng);
  std::multiset<double> targets;
  for (double y : split.train.y) targets.insert(y);
  for (double y : split.test.y) targets.insert(y);
  std::multiset<double> original(d.y.begin(), d.y.end());
  EXPECT_EQ(targets, original);
}

TEST(Split, RowsStayAlignedWithTargets) {
  const Dataset d = make_dataset(40);
  Rng rng(3);
  const auto split = train_test_split(d, 0.5, rng);
  for (std::size_t i = 0; i < split.train.num_rows(); ++i) {
    // y = 10*a by construction.
    EXPECT_DOUBLE_EQ(split.train.y[i], split.train.x[i][0] * 10.0);
  }
}

TEST(Split, DeterministicForSeed) {
  const Dataset d = make_dataset(30);
  Rng a(7), b(7);
  const auto s1 = train_test_split(d, 0.8, a);
  const auto s2 = train_test_split(d, 0.8, b);
  EXPECT_EQ(s1.train.y, s2.train.y);
  EXPECT_EQ(s1.test.y, s2.test.y);
}

TEST(Split, ActuallyShuffles) {
  const Dataset d = make_dataset(100);
  Rng rng(11);
  const auto split = train_test_split(d, 0.8, rng);
  // The train targets should not simply be the first 80 in order.
  std::vector<double> first80(d.y.begin(), d.y.begin() + 80);
  EXPECT_NE(split.train.y, first80);
}

TEST(Split, AlwaysLeavesBothSidesNonEmpty) {
  const Dataset d = make_dataset(2);
  Rng rng(1);
  const auto split = train_test_split(d, 0.99, rng);
  EXPECT_EQ(split.train.num_rows(), 1u);
  EXPECT_EQ(split.test.num_rows(), 1u);
}

TEST(Split, RejectsDegenerateInputs) {
  const Dataset d = make_dataset(1);
  Rng rng(1);
  EXPECT_THROW(train_test_split(d, 0.8, rng), InvariantError);
  const Dataset ok = make_dataset(10);
  EXPECT_THROW(train_test_split(ok, 0.0, rng), InvariantError);
  EXPECT_THROW(train_test_split(ok, 1.0, rng), InvariantError);
}

}  // namespace
}  // namespace adse::ml
