#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "config/cpu_config.hpp"

namespace adse::power {
namespace {

/// The model must be reproducible by hand from the constants in the header
/// (that is the point of exposing them): these tests re-derive the expected
/// numbers independently, term by term, instead of calling back into the
/// implementation.

config::CpuConfig default_config() { return config::CpuConfig{}; }

/// A deliberately different second design: wide vectors, big caches, deep
/// window — the "wide corner" of the Pareto front.
config::CpuConfig wide_config() {
  config::CpuConfig c;
  c.core.vector_length_bits = 1024;
  c.core.rob_size = 512;
  c.core.fp_phys_regs = 256;
  c.mem.l1_size_kib = 128;
  c.mem.l2_size_kib = 2048;
  return c;
}

TEST(PowerArea, HandComputedDefaultConfig) {
  const config::CpuConfig c = default_config();
  const AreaBreakdown a = area_breakdown(c);

  EXPECT_DOUBLE_EQ(a.base, kCoreBaseMm2);
  EXPECT_DOUBLE_EQ(a.rob, kRobEntryMm2 * 180);
  EXPECT_DOUBLE_EQ(a.lsq, kLsqEntryMm2 * (64 + 36));

  // Regfile: 2 read ports per frontend lane (4) + 1 write port per commit
  // lane (4) -> port factor 1 + 0.08 * 12; cells are GP + NZCV flat arrays
  // plus VL-wide FP and VL/8-wide predicate bit arrays.
  const double port_factor = 1.0 + kRegfilePortAreaFactor * (2.0 * 4 + 4);
  const double cells = kGpRegMm2 * 128 + kCondRegMm2 * 32 +
                       kVectorRegMm2PerBit * 128.0 * 128 +
                       kVectorRegMm2PerBit * (128.0 / 8.0) * 48;
  EXPECT_DOUBLE_EQ(a.regfile, cells * port_factor);

  EXPECT_DOUBLE_EQ(a.frontend, kFetchByteMm2 * 32 + kLoopBufferOpMm2 * 32 +
                                   kPipeWidthMm2 * (4 + 4 + 2));

  // VL = 128 is the architectural minimum: relative lane count 1, so the
  // superlinear exponent is invisible and the datapath is ports * base.
  EXPECT_DOUBLE_EQ(a.vector_datapath, kVectorPortMm2 * 2);

  EXPECT_DOUBLE_EQ(a.l1,
                   kSramMm2PerKib * 32 * (1.0 + kCacheTagFactorPerWay * 8));
  EXPECT_DOUBLE_EQ(a.l2,
                   kSramMm2PerKib * 256 * (1.0 + kCacheTagFactorPerWay * 8));

  EXPECT_DOUBLE_EQ(area_mm2(c), a.total());
  EXPECT_DOUBLE_EQ(leakage_watts(c), kLeakageWattsPerMm2 * a.total());
  // Sanity anchor: a modest OoO core with 32K/256K caches lands in the
  // low-single-digit mm2 range, not 0.1 and not 100.
  EXPECT_GT(a.total(), 1.0);
  EXPECT_LT(a.total(), 5.0);
}

TEST(PowerArea, HandComputedWideConfig) {
  const config::CpuConfig c = wide_config();
  const AreaBreakdown a = area_breakdown(c);

  EXPECT_DOUBLE_EQ(a.rob, kRobEntryMm2 * 512);
  // VL 1024 = 8 relative lanes; the datapath pays 8^1.35, not 8.
  EXPECT_DOUBLE_EQ(a.vector_datapath,
                   kVectorPortMm2 * 2 * std::pow(8.0, kVectorAreaExponent));
  EXPECT_GT(a.vector_datapath, kVectorPortMm2 * 2 * 8.0);  // superlinear

  const double port_factor = 1.0 + kRegfilePortAreaFactor * (2.0 * 4 + 4);
  const double cells = kGpRegMm2 * 128 + kCondRegMm2 * 32 +
                       kVectorRegMm2PerBit * 1024.0 * 256 +
                       kVectorRegMm2PerBit * (1024.0 / 8.0) * 48;
  EXPECT_DOUBLE_EQ(a.regfile, cells * port_factor);

  EXPECT_DOUBLE_EQ(a.l1,
                   kSramMm2PerKib * 128 * (1.0 + kCacheTagFactorPerWay * 8));
  EXPECT_DOUBLE_EQ(a.l2,
                   kSramMm2PerKib * 2048 * (1.0 + kCacheTagFactorPerWay * 8));
}

TEST(PowerArea, MonotoneInRobVectorLengthAndCacheSize) {
  config::CpuConfig base = default_config();

  config::CpuConfig bigger_rob = base;
  bigger_rob.core.rob_size = 512;
  EXPECT_GT(area_mm2(bigger_rob), area_mm2(base));

  double prev = area_mm2(base);
  for (int vl = 256; vl <= 2048; vl *= 2) {
    config::CpuConfig wider = base;
    wider.core.vector_length_bits = vl;
    EXPECT_GT(area_mm2(wider), prev) << "VL " << vl;
    prev = area_mm2(wider);
  }

  config::CpuConfig bigger_l1 = base;
  bigger_l1.mem.l1_size_kib = 128;
  EXPECT_GT(area_mm2(bigger_l1), area_mm2(base));
  config::CpuConfig bigger_l2 = base;
  bigger_l2.mem.l2_size_kib = 8192;
  EXPECT_GT(area_mm2(bigger_l2), area_mm2(base));
}

TEST(PowerEnergy, ZeroEventRunCostsExactlyLeakage) {
  const config::CpuConfig c = default_config();
  core::CoreStats core;
  mem::MemStats mem;
  core.cycles = 1'000'000;

  const PowerResult r = analyze(c, core, mem);
  ASSERT_TRUE(r.valid());
  EXPECT_DOUBLE_EQ(r.dynamic_j, 0.0);
  const double seconds = 1.0e6 / (config::kCoreClockGhz * 1.0e9);
  EXPECT_DOUBLE_EQ(r.leakage_j, kLeakageWattsPerMm2 * area_mm2(c) * seconds);
  EXPECT_DOUBLE_EQ(r.energy_j(), r.leakage_j);
}

TEST(PowerEnergy, HandComputedEventMix) {
  const config::CpuConfig c = default_config();
  core::CoreStats core;
  mem::MemStats mem;
  core.cycles = 1000;
  core.retired = 400;
  core.regfile_reads[static_cast<int>(isa::RegClass::kGp)] = 300;
  core.regfile_writes[static_cast<int>(isa::RegClass::kGp)] = 200;
  core.regfile_reads[static_cast<int>(isa::RegClass::kFp)] = 100;
  core.regfile_writes[static_cast<int>(isa::RegClass::kFp)] = 50;
  core.sve_lane_ops = 80;
  core.loads_sent = 60;
  core.stores_sent = 20;
  core.rs_wakeups = 500;
  mem.l1_reads = 70;
  mem.l1_writes = 30;
  mem.l2_reads = 10;
  mem.l2_writes = 4;
  mem.ram_requests = 5;
  mem.dirty_writebacks = 2;

  const EnergyBreakdown e = dynamic_breakdown(c, core, mem);
  const double pj = 1.0e-12;

  // Defaults: rob 180 and lsq 100 sit exactly at the scale anchors, VL 128
  // means wiring factor 1.
  EXPECT_DOUBLE_EQ(e.rob, pj * (kRobWritePj + kRobReadPj) * 400);
  const double fp_read = kVectorRegPjPerBit * 128.0;
  const double fp_write = fp_read * kRegWriteFactor;
  EXPECT_DOUBLE_EQ(e.regfile, pj * (kGpRegReadPj * 300 + kGpRegWritePj * 200 +
                                    fp_read * 100 + fp_write * 50));
  EXPECT_DOUBLE_EQ(e.vector_datapath, pj * kSveLaneOpPj * 80);
  EXPECT_DOUBLE_EQ(e.lsq, pj * kLsqSearchPj * (60 + 20));
  EXPECT_DOUBLE_EQ(e.frontend, pj * kFrontendOpPj * 400);
  EXPECT_DOUBLE_EQ(e.wakeup, pj * kWakeupPj * 500);

  // Caches at their energy anchors (32K/256K, 64B line, 8-way).
  const double l1_read = kL1ReadPjBase * (1.0 + kCacheWayEnergyFactor * 8);
  const double l2_read = kL2ReadPjBase * (1.0 + kCacheWayEnergyFactor * 8);
  EXPECT_DOUBLE_EQ(e.l1, pj * l1_read * (70 + kCacheWriteFactor * 30));
  EXPECT_DOUBLE_EQ(e.l2, pj * l2_read * (10 + kCacheWriteFactor * 4));
  EXPECT_DOUBLE_EQ(e.ram, pj * kRamPjPerByte * 64 * (5 + 2));

  const PowerResult r = analyze(c, core, mem);
  EXPECT_DOUBLE_EQ(r.dynamic_j, e.total());
}

TEST(PowerEnergy, WiderVectorsCostMorePerLaneOp) {
  // The dynamic half of the knee: identical event counts, wider VL ->
  // strictly more energy per SVE lane-op and per FP regfile access.
  core::CoreStats core;
  mem::MemStats mem;
  core.sve_lane_ops = 1000;
  core.regfile_reads[static_cast<int>(isa::RegClass::kFp)] = 1000;

  double prev = 0.0;
  for (int vl = 128; vl <= 2048; vl *= 2) {
    config::CpuConfig c;
    c.core.vector_length_bits = vl;
    const EnergyBreakdown e = dynamic_breakdown(c, core, mem);
    EXPECT_GT(e.vector_datapath + e.regfile, prev) << "VL " << vl;
    prev = e.vector_datapath + e.regfile;
  }
  EXPECT_DOUBLE_EQ(vector_wiring_factor(128), 1.0);
  EXPECT_DOUBLE_EQ(vector_wiring_factor(2048),
                   1.0 + kVectorWiringFactor * 15.0);
}

// ---- multicore extensions --------------------------------------------------

TEST(PowerMulticore, HandComputedDirectoryArea) {
  // 4 tiles, full map: one entry per L2-slice line (256 KiB / 64 B = 4096),
  // each entry 4 presence bits + the fixed overhead, one table per slice.
  config::CpuConfig c;
  c.mc.num_cores = 4;
  EXPECT_EQ(coherence::resolved_directory_entries(c.mem, c.mc), 4096);
  EXPECT_DOUBLE_EQ(directory_area_mm2(c),
                   kDirectoryBitMm2 * (4.0 + kDirEntryOverheadBits) * 4096 * 4);

  // Sparse with an explicit budget tracks far fewer lines.
  c.mc.directory_scheme = config::DirectoryScheme::kSparse;
  c.mc.directory_entries = 64;
  EXPECT_DOUBLE_EQ(directory_area_mm2(c),
                   kDirectoryBitMm2 * (4.0 + kDirEntryOverheadBits) * 64 * 4);

  // Sparse auto-size: a quarter of the slice's lines.
  c.mc.directory_entries = 0;
  EXPECT_EQ(coherence::resolved_directory_entries(c.mem, c.mc), 1024);
}

TEST(PowerMulticore, MulticoreAreaIsTilesPlusDirectory) {
  config::CpuConfig c;
  c.mc.num_cores = 8;
  EXPECT_DOUBLE_EQ(multicore_area_mm2(c),
                   8.0 * area_mm2(c) + directory_area_mm2(c));
  // A single tile with a degenerate (1-core) directory still exceeds the
  // plain core by exactly the directory overhead.
  c.mc.num_cores = 1;
  EXPECT_DOUBLE_EQ(multicore_area_mm2(c),
                   area_mm2(c) + directory_area_mm2(c));
}

TEST(PowerMulticore, HandComputedMulticoreEnergy) {
  config::CpuConfig c;
  c.mc.num_cores = 4;
  coherence::CoherenceStats mem;
  mem.l1_reads = 100;
  mem.l1_writes = 40;
  mem.l2_reads = 10;
  mem.l2_writes = 6;
  mem.ram_requests = 5;
  mem.dirty_writebacks = 2;
  mem.directory_lookups = 50;
  mem.invalidations_sent = 3;
  mem.invalidation_acks = 3;
  mem.downgrades = 2;
  mem.writebacks_owner = 1;
  mem.l2_back_invalidations = 1;
  mem.remote_requests = 4;
  EXPECT_EQ(mem.network_messages(), 3u + 3u + 2u + 1u + 1u + 4u);

  const PowerResult r = analyze_multicore(c, 1000, 500, mem);
  const double rob_scale = std::sqrt(180.0 / 180.0);
  double pj = (kFrontendOpPj + rob_scale * (kRobWritePj + kRobReadPj)) * 500;
  pj += l1_read_energy_pj(c.mem) * (100 + kCacheWriteFactor * 40);
  pj += l2_read_energy_pj(c.mem) * (10 + kCacheWriteFactor * 6);
  pj += kRamPjPerByte * 64 * (5 + 2);
  pj += kDirectoryLookupPj * 50;
  pj += kCoherenceMsgPj * 14;
  EXPECT_DOUBLE_EQ(r.dynamic_j, 1.0e-12 * pj);

  const double seconds = 1000.0 / (config::kCoreClockGhz * 1.0e9);
  EXPECT_DOUBLE_EQ(r.leakage_j,
                   kLeakageWattsPerMm2 * multicore_area_mm2(c) * seconds);
  EXPECT_DOUBLE_EQ(r.area_mm2, multicore_area_mm2(c));
  EXPECT_TRUE(r.valid());
}

TEST(PowerMulticore, CoherenceTrafficCostsEnergy) {
  // Same retirement work, more protocol messages -> strictly more energy.
  config::CpuConfig c;
  c.mc.num_cores = 4;
  coherence::CoherenceStats quiet;
  quiet.l1_reads = 1000;
  coherence::CoherenceStats noisy = quiet;
  noisy.invalidations_sent = 200;
  noisy.invalidation_acks = 200;
  noisy.directory_lookups = 300;
  const PowerResult a = analyze_multicore(c, 1000, 500, quiet);
  const PowerResult b = analyze_multicore(c, 1000, 500, noisy);
  EXPECT_GT(b.dynamic_j, a.dynamic_j);
  EXPECT_DOUBLE_EQ(b.dynamic_j - a.dynamic_j,
                   1.0e-12 * (kCoherenceMsgPj * 400 + kDirectoryLookupPj * 300));
}

TEST(PowerResultStruct, NanUntilComputedAndEnergySums) {
  PowerResult r;
  EXPECT_FALSE(r.valid());
  r.dynamic_j = 1.0;
  r.leakage_j = 2.0;
  r.area_mm2 = 3.0;
  EXPECT_TRUE(r.valid());
  EXPECT_DOUBLE_EQ(r.energy_j(), 3.0);
}

}  // namespace
}  // namespace adse::power
