#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/require.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace adse::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator (recursive descent, syntax only) — asserts that the
// snapshot/trace exports are loadable by any real JSON parser (and therefore
// by chrome://tracing).

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool json_valid(std::string_view text) { return JsonChecker(text).valid(); }

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Counters

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, DeltasAccumulate) {
  Counter counter;
  counter.add(3);
  counter.add();  // default 1
  counter.add(0);
  EXPECT_EQ(counter.value(), 4u);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

// ---------------------------------------------------------------------------
// Histograms

TEST(Histogram, ExactAggregatesAndBoundedQuantileError) {
  Histogram histogram;
  double sum = 0.0;
  for (int v = 1; v <= 1000; ++v) {
    histogram.observe(static_cast<double>(v));
    sum += v;
  }
  const HistogramSnapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  // Log buckets (8/octave) bound the representative error to ~±4.5%; allow
  // 10% so the assertion tracks the guarantee, not the implementation.
  EXPECT_NEAR(s.p50, 500.0, 50.0);
  EXPECT_NEAR(s.p90, 900.0, 90.0);
  EXPECT_NEAR(s.p99, 990.0, 99.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

TEST(Histogram, PointMassQuantilesLandInOneBucket) {
  Histogram histogram;
  for (int i = 0; i < 64; ++i) histogram.observe(3.0);
  const HistogramSnapshot s = histogram.snapshot();
  EXPECT_NEAR(s.p50, 3.0, 3.0 * 0.10);
  EXPECT_DOUBLE_EQ(s.p50, s.p99);  // one bucket => one representative
}

TEST(Histogram, EmptyAndDegenerateSamples) {
  Histogram histogram;
  EXPECT_EQ(histogram.snapshot().count, 0u);
  EXPECT_EQ(histogram.quantile(0.5), 0.0);

  histogram.observe(0.0);
  histogram.observe(-7.0);  // clamps into the zero bucket
  const HistogramSnapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.min, -7.0);
}

TEST(Histogram, ConcurrentObservesKeepExactCount) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, NamesResolveToStableInstances) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(registry.counter("x").value(), 2u);
  // Distinct kinds may not collide, distinct names are independent.
  registry.gauge("g").set(1.0);
  EXPECT_EQ(registry.counter("y").value(), 0u);
}

TEST(Registry, JsonSnapshotParsesAndCarriesValues) {
  Registry registry;
  registry.counter("eval.requests").add(42);
  registry.gauge("pool.depth").set(3.0);
  auto& h = registry.histogram("round \"secs\"\n");  // hostile name
  h.observe(1.0);
  h.observe(2.0);

  const std::string json = registry.render_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"eval.requests\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;

  const std::string text = registry.render_text();
  EXPECT_NE(text.find("eval.requests"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Registry, EmptySnapshotStillParses) {
  Registry registry;
  EXPECT_TRUE(json_valid(registry.render_json())) << registry.render_json();
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(Tracer, ExportIsLoadableChromeTraceJson) {
  const auto path = std::filesystem::temp_directory_path() / "adse_trace.json";
  std::filesystem::remove(path);
  {
    Tracer tracer(path.string());
    ASSERT_TRUE(tracer.enabled());
    {
      Span outer(tracer, "dse.round", "dse");
      outer.set_detail("guided #1");
      Span inner(tracer, "eval.batch", "eval");
    }
    // Spans recorded off-thread get their own tid.
    std::thread([&tracer] { Span s(tracer, "sim.simulate", "sim"); }).join();
    EXPECT_EQ(tracer.num_events(), 3u);
    tracer.flush();
  }  // destructor re-flushes; the file must stay intact

  const std::string json = slurp(path);
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"dse.round\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"eval.batch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sim.simulate\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\": \"guided #1\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Tracer, DisabledTracerRecordsAndWritesNothing) {
  Tracer tracer("");
  EXPECT_FALSE(tracer.enabled());
  { Span span(tracer, "ignored"); }
  EXPECT_EQ(tracer.num_events(), 0u);
  tracer.flush();  // must not crash or create a file
}

TEST(Tracer, EmptyTraceStillParses) {
  const auto path = std::filesystem::temp_directory_path() / "adse_trace0.json";
  std::filesystem::remove(path);
  { Tracer tracer(path.string()); }
  EXPECT_TRUE(json_valid(slurp(path)));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Leveled logging

struct CapturedLog {
  static std::vector<std::pair<LogLevel, std::string>>& entries() {
    static std::vector<std::pair<LogLevel, std::string>> log;
    return log;
  }
  static void sink(LogLevel level, std::string_view message) {
    entries().emplace_back(level, std::string(message));
  }
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CapturedLog::entries().clear();
    previous_sink_ = set_log_sink(&CapturedLog::sink);
  }
  void TearDown() override {
    set_log_sink(previous_sink_);
    set_log_level(LogLevel::kInfo);
  }
  LogSink previous_sink_ = nullptr;
};

TEST_F(LogTest, LevelFiltering) {
  set_log_level(LogLevel::kWarn);
  logf(LogLevel::kInfo, "[campaign] %d/%d runs\n", 1, 2);
  logf(LogLevel::kDebug, "noise\n");
  logf(LogLevel::kWarn, "stale cache %s\n", "x.csv");
  logf(LogLevel::kError, "boom\n");

  ASSERT_EQ(CapturedLog::entries().size(), 2u);
  EXPECT_EQ(CapturedLog::entries()[0].second, "stale cache x.csv\n");
  EXPECT_EQ(CapturedLog::entries()[1].second, "boom\n");
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  logf(LogLevel::kError, "even errors\n");
  EXPECT_TRUE(CapturedLog::entries().empty());
}

TEST_F(LogTest, MessagesAreVerbatim) {
  set_log_level(LogLevel::kInfo);
  // The exact progress line the campaign emits: no prefix, no added newline.
  logf(LogLevel::kInfo, "[campaign %s] %zu/%zu runs (%.1fs elapsed)\n", "main",
       static_cast<std::size_t>(400), static_cast<std::size_t>(6000), 12.3);
  ASSERT_EQ(CapturedLog::entries().size(), 1u);
  EXPECT_EQ(CapturedLog::entries()[0].second,
            "[campaign main] 400/6000 runs (12.3s elapsed)\n");
}

TEST_F(LogTest, LongMessagesSurviveTheHeapPath) {
  set_log_level(LogLevel::kInfo);
  const std::string payload(2000, 'x');
  logf(LogLevel::kInfo, "%s!", payload.c_str());
  ASSERT_EQ(CapturedLog::entries().size(), 1u);
  EXPECT_EQ(CapturedLog::entries()[0].second.size(), payload.size() + 1);
  EXPECT_EQ(CapturedLog::entries()[0].second.back(), '!');
}

TEST(LogLevelParse, NamesRoundTripAndRejectGarbage) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level(" info "), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("verbose"), InvariantError);
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

}  // namespace
}  // namespace adse::obs
