/// Eval-as-a-service tests: wire-protocol round trips and fuzzing (hostile
/// bytes must yield clean errors, never crashes or hangs), daemon/client
/// integration over a real unix socket, cross-client coalescing, client
/// retry across a daemon restart, and the SIGTERM-mid-batch teardown
/// regression (forked child must drain and exit 0 with an intact store).

#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.hpp"
#include "config/baselines.hpp"
#include "eval/result_store.hpp"
#include "eval/wire.hpp"
#include "serve/client.hpp"

namespace adse::serve {
namespace {

namespace wire = eval::wire;
using eval::EvalRequest;
using eval::EvalResponse;
using eval::EvalStatus;

EvalRequest stream_request(int rob = 0) {
  EvalRequest request{config::thunderx2_baseline(), kernels::App::kStream};
  if (rob > 0) request.config.core.rob_size = rob;
  return request;
}

// --- wire protocol: round trips ---------------------------------------------

TEST(Wire, RequestRoundTripsBitExact) {
  EvalRequest request = stream_request(192);
  request.config.name = "round-trip";
  request.allow_surrogate = false;
  request.app = kernels::App::kMiniBude;

  EvalRequest decoded;
  ASSERT_TRUE(wire::decode_request(wire::encode_request(request), decoded));
  EXPECT_EQ(decoded.app, request.app);
  EXPECT_FALSE(decoded.allow_surrogate);
  EXPECT_EQ(decoded.config.name, "round-trip");
  // The feature vector is the wire representation of the config: a decoded
  // request must key onto exactly the same memo slot.
  EXPECT_EQ(config::feature_vector(decoded.config),
            config::feature_vector(request.config));
}

TEST(Wire, ResponseRoundTripsBitExact) {
  EvalResponse response;
  response.status = EvalStatus::kOk;
  response.source = eval::ResultSource::kStore;
  response.run.app = "stream";
  response.run.config_name = "cfg-7";
  response.run.core.cycles = 123456789;
  response.run.core.retired = 42;
  response.run.core.sve_lane_ops = 7;
  response.run.mem.l1_hits = 99;
  response.run.mem.l2_writes = 3;
  response.run.power.dynamic_j = 1.25e-6;
  response.run.power.leakage_j = 2.5e-7;
  response.run.power.area_mm2 = 3.5;

  EvalResponse decoded;
  ASSERT_TRUE(
      wire::decode_response(wire::encode_response(response), decoded));
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.source, response.source);
  EXPECT_EQ(decoded.run.app, "stream");
  EXPECT_EQ(decoded.run.config_name, "cfg-7");
  EXPECT_EQ(decoded.run.core.cycles, 123456789u);
  EXPECT_EQ(decoded.run.core.sve_lane_ops, 7u);
  EXPECT_EQ(decoded.run.mem.l2_writes, 3u);
  EXPECT_DOUBLE_EQ(decoded.run.power.dynamic_j, 1.25e-6);
  EXPECT_DOUBLE_EQ(decoded.run.power.area_mm2, 3.5);
}

TEST(Wire, FrameRoundTrip) {
  const std::string payload = "hello frames";
  const std::string bytes =
      wire::encode_frame(wire::FrameType::kStatsReply, 77, payload);
  wire::Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::try_decode(bytes, frame, consumed), wire::DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, wire::FrameType::kStatsReply);
  EXPECT_EQ(frame.id, 77u);
  EXPECT_EQ(frame.payload, payload);
}

// --- wire protocol: fuzzing -------------------------------------------------

TEST(Wire, TruncatedFramesWantMoreBytesNeverCrash) {
  const std::string bytes = wire::encode_frame(
      wire::FrameType::kEvalRequest, 5,
      wire::encode_request(stream_request()));
  // Every proper prefix is an incomplete frame, not an error: a torn read
  // mid-frame must leave the stream waiting, exactly like the result
  // store's torn tail.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::Frame frame;
    std::size_t consumed = 1;
    EXPECT_EQ(wire::try_decode(std::string_view(bytes).substr(0, cut), frame,
                               consumed),
              wire::DecodeStatus::kNeedMore)
        << "prefix length " << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Wire, BitFlippedFramesRejectCleanly) {
  const std::string pristine = wire::encode_frame(
      wire::FrameType::kEvalRequest, 9,
      wire::encode_request(stream_request()));
  // Flip one bit at a time across the whole frame: every corruption must be
  // detected (magic/version/length checks or the checksum trailer) — none
  // may decode as a valid frame.
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    std::string corrupt = pristine;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x10);
    wire::Frame frame;
    std::size_t consumed = 0;
    const wire::DecodeStatus status =
        wire::try_decode(corrupt, frame, consumed);
    EXPECT_NE(status, wire::DecodeStatus::kOk) << "flipped byte " << byte;
    // kNeedMore is reachable (a flipped length byte can claim a longer
    // frame), but only for flips inside the length field — and the stream
    // then dies on checksum once the claimed bytes "arrive". Simulate that:
    if (status == wire::DecodeStatus::kNeedMore) {
      std::string extended = corrupt + std::string(1 << 16, '\0');
      const wire::DecodeStatus later =
          wire::try_decode(extended, frame, consumed);
      EXPECT_TRUE(later == wire::DecodeStatus::kBadChecksum ||
                  later == wire::DecodeStatus::kNeedMore)
          << "flipped byte " << byte;
    }
  }
}

TEST(Wire, OversizedLengthRejected) {
  std::string bytes = wire::encode_frame(wire::FrameType::kPing, 1, {});
  // Rewrite payload_len (offset 20: after magic+version+type+id) to
  // something absurd.
  const std::uint32_t huge = wire::kMaxPayload + 1;
  std::memcpy(bytes.data() + 20, &huge, sizeof(huge));
  wire::Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::try_decode(bytes, frame, consumed),
            wire::DecodeStatus::kBadLength);
}

TEST(Wire, WrongVersionRejectedBeforeAnythingElse) {
  std::string bytes = wire::encode_frame(wire::FrameType::kPing, 1, {});
  const std::uint32_t future = wire::kVersion + 1;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  wire::Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::try_decode(bytes, frame, consumed),
            wire::DecodeStatus::kBadVersion);
  EXPECT_EQ(wire::decode_status_to_eval(wire::DecodeStatus::kBadVersion),
            EvalStatus::kVersionMismatch);
}

TEST(Wire, RandomPayloadsNeverCrashDecoders) {
  Rng rng(20260809);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t size = rng.index(512);
    std::string payload(size, '\0');
    for (char& c : payload) {
      c = static_cast<char>(rng.index(256));
    }
    // Decoders must return false (or true with in-range enums) — no crash,
    // no hang, no out-of-bounds read for asan to find.
    EvalRequest request;
    wire::decode_request(payload, request);
    EvalResponse response;
    wire::decode_response(payload, response);
    eval::EvalError error;
    wire::decode_error(payload, error);
  }
  SUCCEED();
}

TEST(Wire, IdenticalConfigsShardIdentically) {
  const std::uint64_t a = wire::request_shard_hash(stream_request(64));
  const std::uint64_t b = wire::request_shard_hash(stream_request(64));
  const std::uint64_t c = wire::request_shard_hash(stream_request(65));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // FNV over 30 doubles: differing configs split shards
}

// --- daemon + client over a real socket -------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("adse_serve_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    socket_path_ = (dir_ / "eval.sock").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DaemonOptions daemon_options(int workers = 2) {
    DaemonOptions options;
    options.socket_path = socket_path_;
    options.workers = workers;
    options.service.threads = 2;
    return options;
  }

  ClientOptions client_options() {
    ClientOptions options;
    options.socket_path = socket_path_;
    options.timeout_ms = 60000;
    options.retry_backoff_ms = 10;
    return options;
  }

  std::filesystem::path dir_;
  std::string socket_path_;
};

TEST_F(ServeTest, EvaluatesOverSocketBitIdenticalToInProcess) {
  Daemon daemon(daemon_options());
  daemon.start();

  EvalClient client(client_options());
  const std::vector<EvalRequest> requests = {stream_request(),
                                             stream_request(128)};
  const auto remote = client.evaluate(requests);
  ASSERT_EQ(remote.size(), 2u);
  ASSERT_TRUE(remote[0].ok()) << remote[0].error;
  ASSERT_TRUE(remote[1].ok()) << remote[1].error;

  // The same requests through a hermetic in-process service: the wire path
  // must be bit-identical (same cycles, same counters).
  eval::ServiceConfig hermetic;
  hermetic.threads = 1;
  eval::EvalService service(hermetic);
  const auto local = service.evaluate(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(remote[i].cycles(), local[i].cycles());
    EXPECT_EQ(remote[i].run.core.retired, local[i].run.core.retired);
    EXPECT_EQ(remote[i].run.mem.l1_hits, local[i].run.mem.l1_hits);
    EXPECT_DOUBLE_EQ(remote[i].run.power.dynamic_j,
                     local[i].run.power.dynamic_j);
  }
  EXPECT_TRUE(client.ping());
  EXPECT_NE(client.stats().find("serve.requests"), std::string::npos);
}

TEST_F(ServeTest, ManyClientsSameConfigCoalesceToOneBackendRun) {
  Daemon daemon(daemon_options(4));
  daemon.start();

  // M concurrent clients all asking for the same design point: the shard
  // hash routes every copy to one worker, whose memo once-latch guarantees
  // exactly one backend run — the cross-client version of the in-process
  // dedup test.
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<EvalResponse> responses(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &responses] {
      EvalClient client(client_options());
      const std::vector<EvalRequest> one = {stream_request()};
      responses[static_cast<std::size_t>(c)] = client.evaluate(one).front();
    });
  }
  for (auto& thread : threads) thread.join();

  for (const EvalResponse& r : responses) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.cycles(), responses.front().cycles());
  }
  const eval::EvalStats stats = daemon.service().stats();
  EXPECT_EQ(stats.backend_runs, 1u);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients));
}

TEST_F(ServeTest, GarbageBytesGetErrorFrameAndDaemonSurvives) {
  Daemon daemon(daemon_options());
  daemon.start();

  // Raw socket speaking garbage: the daemon must answer with a clean error
  // frame, close that connection, and keep serving everyone else.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string garbage(64, 'x');
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));

  std::string received;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // server closed after the error frame
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  wire::Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::try_decode(received, frame, consumed),
            wire::DecodeStatus::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kError);
  eval::EvalError error;
  ASSERT_TRUE(wire::decode_error(frame.payload, error));
  EXPECT_EQ(error.status, EvalStatus::kBadFrame);

  // The daemon is still healthy for well-behaved clients.
  EvalClient client(client_options());
  EXPECT_TRUE(client.ping());
  const std::vector<EvalRequest> one = {stream_request()};
  EXPECT_TRUE(client.evaluate(one).front().ok());
}

TEST_F(ServeTest, ClientRetriesAcrossDaemonRestartAndWarmStoreServes) {
  const std::string store = (dir_ / "store.bin").string();

  DaemonOptions options = daemon_options();
  options.service.store_path = store;
  auto first = std::make_unique<Daemon>(options);
  first->start();

  EvalClient client(client_options());
  const std::vector<EvalRequest> requests = {stream_request(),
                                             stream_request(96)};
  const auto cold = client.evaluate(requests);
  ASSERT_TRUE(cold[0].ok());
  ASSERT_TRUE(cold[1].ok());

  // Drain daemon #1 (the client's connection dies with it)...
  ASSERT_TRUE(client.drain_server());
  first->wait();
  first.reset();

  // ...start daemon #2 on the same socket with the same store. The client's
  // next evaluate hits a dead connection, reconnects within its retry
  // budget, and every answer comes from the warm store: zero fresh sims.
  Daemon second(options);
  second.start();
  const auto warm = client.evaluate(requests);
  ASSERT_TRUE(warm[0].ok()) << warm[0].error;
  ASSERT_TRUE(warm[1].ok()) << warm[1].error;
  EXPECT_EQ(warm[0].cycles(), cold[0].cycles());
  EXPECT_EQ(warm[1].cycles(), cold[1].cycles());
  const eval::EvalStats stats = second.service().stats();
  EXPECT_EQ(stats.backend_runs, 0u);
  EXPECT_EQ(stats.store_hits, 2u);
}

TEST_F(ServeTest, DrainingServerRejectsNewWorkWithDrainingStatus) {
  Daemon daemon(daemon_options());
  daemon.start();
  daemon.drain();
  daemon.wait();
  // The socket is gone; a client with a zero retry budget reports the
  // daemon unreachable rather than hanging.
  ClientOptions options = client_options();
  options.max_retries = 0;
  EvalClient client(options);
  const std::vector<EvalRequest> one = {stream_request()};
  const auto responses = client.evaluate(one);
  EXPECT_EQ(responses.front().status, EvalStatus::kDisconnected);
}

// --- SIGTERM mid-batch: teardown-order regression ---------------------------

TEST_F(ServeTest, SigtermMidBatchDrainsFlushesAndExitsCleanly) {
  const std::string store = (dir_ / "store.bin").string();

  int ready_pipe[2];
  ASSERT_EQ(::pipe(ready_pipe), 0);

  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);

  if (child == 0) {
    // Daemon process. std::exit (not _exit) after the drain so every static
    // destructor runs — the regression this guards is exactly exit-time
    // teardown order (EvalService's pool vs the obs tracer/registry) while
    // a kill arrives mid-batch.
    ::close(ready_pipe[0]);
    DaemonOptions options;
    options.socket_path = socket_path_;
    options.workers = 2;
    options.service.threads = 2;
    options.service.store_path = store;
    options.handle_sigterm = true;
    Daemon daemon(options);
    daemon.start();
    const char byte = 'r';
    [[maybe_unused]] const ssize_t n = ::write(ready_pipe[1], &byte, 1);
    ::close(ready_pipe[1]);
    daemon.wait();
    std::exit(0);
  }

  // Parent / client side.
  ::close(ready_pipe[1]);
  char byte;
  ASSERT_EQ(::read(ready_pipe[0], &byte, 1), 1);
  ::close(ready_pipe[0]);

  ClientOptions options = client_options();
  options.max_retries = 1;
  options.timeout_ms = 60000;

  // Fire a batch from a background thread and SIGTERM the daemon while it
  // is (very likely) mid-batch. Either outcome per request is legal — a
  // real result (drain finished it) or kDraining/kDisconnected — but the
  // child must drain and exit 0 either way.
  std::thread firing([&] {
    EvalClient client(options);
    std::vector<EvalRequest> batch;
    for (int i = 0; i < 24; ++i) {
      batch.push_back(stream_request(32 + 16 * i));
    }
    const auto responses = client.evaluate(batch);
    EXPECT_EQ(responses.size(), batch.size());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  firing.join();

  // The child must exit(0) by itself; 10s of WNOHANG polling before we call
  // it hung (kill -9 so the suite never wedges).
  int status = 0;
  pid_t waited = 0;
  for (int i = 0; i < 1000; ++i) {
    waited = ::waitpid(child, &status, WNOHANG);
    if (waited == child) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (waited != child) {
    ::kill(child, SIGKILL);
    ::waitpid(child, &status, 0);
    FAIL() << "daemon did not drain within 10s of SIGTERM";
  }
  ASSERT_TRUE(WIFEXITED(status)) << "daemon died of signal "
                                 << WTERMSIG(status);
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Whatever the daemon appended before the kill must load back intact —
  // the store's torn-tail discipline plus the drain's flush.
  eval::ResultStore reopened(store);
  for (const eval::StoreRecord& record : reopened.loaded()) {
    EXPECT_GT(record.core.cycles, 0u);
  }
}

}  // namespace
}  // namespace adse::serve
