#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace adse::mem {
namespace {

CacheGeometry geom(std::uint64_t size, std::uint32_t line, std::uint32_t assoc) {
  return CacheGeometry{size, line, assoc};
}

TEST(CacheGeometry, DerivedCounts) {
  const CacheGeometry g = geom(32 * 1024, 64, 8);
  EXPECT_EQ(g.num_lines(), 512u);
  EXPECT_EQ(g.num_sets(), 64u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(geom(32 * 1024, 48, 8)), InvariantError);   // line not pow2
  EXPECT_THROW(Cache(geom(30 * 1024, 64, 8)), InvariantError);   // sets not pow2
  EXPECT_THROW(Cache(geom(32 * 1024, 64, 0)), InvariantError);   // zero assoc
}

TEST(Cache, MissThenHit) {
  Cache c(geom(1024, 64, 2));
  EXPECT_FALSE(c.access(0x100, false));
  c.insert(0x100, false);
  EXPECT_TRUE(c.access(0x100, false));
  EXPECT_TRUE(c.access(0x13f, false));  // same line
  EXPECT_FALSE(c.access(0x140, false)); // next line
}

TEST(Cache, ContainsDoesNotTouchState) {
  Cache c(geom(256, 64, 2));  // 2 sets x 2 ways
  // Fill set 0 (lines 0x000 and 0x100 map to set 0 with 2 sets of 64B lines).
  c.insert(0x000, false);
  c.insert(0x100, false);
  // contains() must not refresh LRU: probing 0x000 then inserting a third
  // line should still evict 0x000 (the LRU victim).
  EXPECT_TRUE(c.contains(0x000));
  const Eviction ev = c.insert(0x200, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.line_addr, 0x000u);
}

TEST(Cache, LruEvictionOrder) {
  Cache c(geom(256, 64, 2));  // 2 sets, 2 ways
  c.insert(0x000, false);
  c.insert(0x100, false);
  c.access(0x000, false);  // refresh 0x000 -> victim should be 0x100
  const Eviction ev = c.insert(0x200, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.line_addr, 0x100u);
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_TRUE(c.contains(0x200));
  EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, DirtyEvictionReported) {
  Cache c(geom(128, 64, 1));  // direct-mapped, 2 sets
  c.insert(0x000, true);      // dirty line in set 0
  const Eviction ev = c.insert(0x080, false);  // same set (2 sets of 64B)
  EXPECT_TRUE(ev.evicted);
  EXPECT_TRUE(ev.dirty);
  EXPECT_EQ(ev.line_addr, 0x000u);
}

TEST(Cache, CleanEvictionNotDirty) {
  Cache c(geom(128, 64, 1));
  c.insert(0x000, false);
  const Eviction ev = c.insert(0x080, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_FALSE(ev.dirty);
}

TEST(Cache, StoreAccessMarksDirty) {
  Cache c(geom(128, 64, 1));
  c.insert(0x000, false);
  EXPECT_TRUE(c.access(0x000, true));  // store hit dirties the line
  const Eviction ev = c.insert(0x080, false);
  EXPECT_TRUE(ev.dirty);
}

TEST(Cache, InsertExistingLineMergesDirty) {
  Cache c(geom(128, 64, 2));
  c.insert(0x000, false);
  const Eviction ev = c.insert(0x000, true);  // re-insert dirty
  EXPECT_FALSE(ev.evicted);
  c.insert(0x040, false);
  const Eviction ev2 = c.insert(0x080, false);  // evicts 0x000 (LRU... )
  // 2 sets: 0x000 and 0x080 share set 0; 0x040 is set 1.
  EXPECT_TRUE(ev2.evicted);
  EXPECT_TRUE(ev2.dirty);
}

TEST(Cache, InsertPrefersInvalidWay) {
  Cache c(geom(256, 64, 2));
  const Eviction ev1 = c.insert(0x000, false);
  EXPECT_FALSE(ev1.evicted);
  const Eviction ev2 = c.insert(0x100, false);
  EXPECT_FALSE(ev2.evicted);  // second way was free
}

TEST(Cache, ResetInvalidatesEverything) {
  Cache c(geom(1024, 64, 4));
  for (std::uint64_t a = 0; a < 1024; a += 64) c.insert(a, true);
  c.reset();
  for (std::uint64_t a = 0; a < 1024; a += 64) EXPECT_FALSE(c.contains(a));
  // And no phantom dirty evictions after reset.
  const Eviction ev = c.insert(0x000, false);
  EXPECT_FALSE(ev.evicted);
}

TEST(Cache, LineAddrMasksOffset) {
  Cache c(geom(1024, 64, 4));
  EXPECT_EQ(c.line_addr(0x12345), 0x12340u);
  EXPECT_EQ(c.line_addr(0x12340), 0x12340u);
}

TEST(Cache, FullyAssociativeSingleSet) {
  Cache c(geom(256, 64, 4));  // one set, 4 ways
  for (std::uint64_t a = 0; a < 4 * 64; a += 64) c.insert(a, false);
  for (std::uint64_t a = 0; a < 4 * 64; a += 64) EXPECT_TRUE(c.contains(a));
  const Eviction ev = c.insert(0x1000, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.line_addr, 0x000u);  // LRU = first inserted
}

// Parameterised capacity property: inserting exactly num_lines distinct
// conflict-free lines fills the cache with no eviction; one more line evicts.
struct GeomCase {
  std::uint64_t size;
  std::uint32_t line;
  std::uint32_t assoc;
};

class CacheCapacity : public ::testing::TestWithParam<GeomCase> {};

TEST_P(CacheCapacity, SequentialFillExactlyFits) {
  const auto& p = GetParam();
  Cache c(geom(p.size, p.line, p.assoc));
  // Sequential lines spread uniformly over sets: capacity misses only.
  for (std::uint64_t a = 0; a < p.size; a += p.line) {
    const Eviction ev = c.insert(a, false);
    EXPECT_FALSE(ev.evicted) << "line " << a;
  }
  for (std::uint64_t a = 0; a < p.size; a += p.line) {
    EXPECT_TRUE(c.contains(a));
  }
  EXPECT_TRUE(c.insert(p.size, false).evicted);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheCapacity,
    ::testing::Values(GeomCase{4096, 16, 1}, GeomCase{4096, 64, 4},
                      GeomCase{32768, 64, 8}, GeomCase{65536, 256, 16},
                      GeomCase{131072, 128, 2}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.size) + "_l" +
             std::to_string(info.param.line) + "_a" +
             std::to_string(info.param.assoc);
    });

}  // namespace
}  // namespace adse::mem
