#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace adse {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), InvariantError);
  EXPECT_THROW(s.max(), InvariantError);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  const double offset = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2));
  EXPECT_NEAR(s.mean(), offset + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(OnlineStats, MergeEqualsConcatenation) {
  Rng rng(5);
  OnlineStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10, 10);
    all.add(x);
    ((i % 3 == 0) ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(BatchStats, MeanAndVariance) {
  const std::vector<double> v{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 4.0);
  EXPECT_NEAR(variance(v), 8.0 / 3.0, 1e-12);
  EXPECT_THROW(mean({}), InvariantError);
}

TEST(BatchStats, PercentileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_THROW(percentile(v, 101), InvariantError);
  EXPECT_THROW(percentile({}, 50), InvariantError);
}

TEST(BatchStats, PercentileIgnoresInputOrder) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), percentile({1, 2, 3}, 50));
}

TEST(BatchStats, Geomean) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW(geomean({1.0, 0.0}), InvariantError);
  EXPECT_THROW(geomean({1.0, -2.0}), InvariantError);
}

TEST(BatchStats, FractionWithin) {
  const std::vector<double> truth{100, 100, 100, 100};
  const std::vector<double> pred{100, 101, 110, 200};
  EXPECT_DOUBLE_EQ(fraction_within(truth, pred, 0.005), 0.25);
  EXPECT_DOUBLE_EQ(fraction_within(truth, pred, 0.02), 0.5);
  EXPECT_DOUBLE_EQ(fraction_within(truth, pred, 0.10), 0.75);
  EXPECT_DOUBLE_EQ(fraction_within(truth, pred, 1.00), 1.0);
}

TEST(BatchStats, FractionWithinZeroTruth) {
  EXPECT_DOUBLE_EQ(fraction_within({0.0, 0.0}, {0.0, 1.0}, 0.5), 0.5);
}

TEST(BatchStats, FractionWithinSizeMismatch) {
  EXPECT_THROW(fraction_within({1.0}, {1.0, 2.0}, 0.1), InvariantError);
}

}  // namespace
}  // namespace adse
