#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "config/baselines.hpp"
#include "sim/hardware_proxy.hpp"

namespace adse::sim {
namespace {

TEST(Simulation, RunsEveryAppOnBaseline) {
  const config::CpuConfig tx2 = config::thunderx2_baseline();
  for (kernels::App app : kernels::all_apps()) {
    const RunResult result = simulate_app(tx2, app);
    EXPECT_GT(result.cycles(), 0u);
    EXPECT_EQ(result.config_name, "thunderx2");
    EXPECT_EQ(result.app, kernels::app_slug(app));
    EXPECT_GT(result.core.ipc(), 0.1);
    EXPECT_LE(result.core.ipc(), config::kDispatchWidth);
  }
}

TEST(Simulation, Deterministic) {
  const config::CpuConfig tx2 = config::thunderx2_baseline();
  EXPECT_EQ(simulate_app(tx2, kernels::App::kStream).cycles(),
            simulate_app(tx2, kernels::App::kStream).cycles());
}

TEST(Simulation, BiggerMachineIsFaster) {
  for (kernels::App app : kernels::all_apps()) {
    const auto minimal = simulate_app(config::minimal_viable(), app);
    const auto big = simulate_app(config::big_future(), app);
    EXPECT_LT(big.cycles(), minimal.cycles()) << kernels::app_name(app);
  }
}

TEST(Simulation, VectorLengthSpeedsUpVectorisedCodes) {
  config::CpuConfig narrow = config::thunderx2_baseline();
  config::CpuConfig wide = narrow;
  wide.core.vector_length_bits = 1024;
  wide.core.load_bandwidth_bytes = 128;
  wide.core.store_bandwidth_bytes = 128;
  EXPECT_LT(simulate_app(wide, kernels::App::kMiniBude).cycles() * 2,
            simulate_app(narrow, kernels::App::kMiniBude).cycles());
  // ...but barely moves the poorly vectorised TeaLeaf.
  const auto tl_narrow = simulate_app(narrow, kernels::App::kTeaLeaf).cycles();
  const auto tl_wide = simulate_app(wide, kernels::App::kTeaLeaf).cycles();
  EXPECT_GT(static_cast<double>(tl_wide),
            0.8 * static_cast<double>(tl_narrow));
}

TEST(Simulation, ValidateResultCatchesShortRetirement) {
  const config::CpuConfig tx2 = config::thunderx2_baseline();
  const isa::Program program = kernels::build_app(kernels::App::kStream, 128);
  RunResult fake;
  fake.app = "stream";
  fake.core.retired = program.ops.size() - 1;
  fake.core.cycles = 100;
  EXPECT_THROW(validate_result(fake, program), InvariantError);
}

TEST(Simulation, MemStatsArePopulated) {
  const RunResult result =
      simulate_app(config::thunderx2_baseline(), kernels::App::kStream);
  EXPECT_GT(result.mem.loads, 0u);
  EXPECT_GT(result.mem.stores, 0u);
  EXPECT_GT(result.mem.ram_requests, 0u);
  EXPECT_GT(result.mem.l1_hit_rate(), 0.5);
}

TEST(HardwareProxy, DiffersFromCampaignSimulator) {
  const config::CpuConfig tx2 = config::thunderx2_baseline();
  const isa::Program program = kernels::build_app(kernels::App::kMiniSweep, 128);
  const RunResult sim = simulate(tx2, program);
  const RunResult hw = simulate_hardware(tx2, program);
  EXPECT_NE(sim.cycles(), hw.cycles());
  EXPECT_EQ(hw.core.retired, sim.core.retired);  // same work either way
}

TEST(HardwareProxy, PenaltiesOffButPrefetcherOnIsFaster) {
  // With every penalty disabled the proxy only has advantages.
  ProxyOptions pure;
  pure.finite_banks = 0;
  pure.mshr_entries = 0;
  pure.model_tlb = false;
  pure.mispredict_interval = 0;
  pure.mispredict_loop_exits = false;
  pure.forward_latency = 1;
  pure.dram_latency_scale = 1.0;
  pure.dram_interval_scale = 1.0;
  const config::CpuConfig tx2 = config::thunderx2_baseline();
  const isa::Program program = kernels::build_app(kernels::App::kStream, 128);
  const RunResult sim = simulate(tx2, program);
  const RunResult hw = simulate_hardware(tx2, program, pure);
  EXPECT_LE(hw.cycles(), sim.cycles());
}

TEST(HardwareProxy, DeterministicToo) {
  const config::CpuConfig tx2 = config::thunderx2_baseline();
  EXPECT_EQ(simulate_hardware_app(tx2, kernels::App::kTeaLeaf).cycles(),
            simulate_hardware_app(tx2, kernels::App::kTeaLeaf).cycles());
}

TEST(Simulation, SveFractionsMatchFig1Pattern) {
  const config::CpuConfig tx2 = config::thunderx2_baseline();
  const double stream = simulate_app(tx2, kernels::App::kStream).core.sve_fraction();
  const double bude = simulate_app(tx2, kernels::App::kMiniBude).core.sve_fraction();
  const double tealeaf = simulate_app(tx2, kernels::App::kTeaLeaf).core.sve_fraction();
  const double sweep = simulate_app(tx2, kernels::App::kMiniSweep).core.sve_fraction();
  EXPECT_GT(stream, 0.4);
  EXPECT_GT(bude, 0.4);
  EXPECT_LT(tealeaf, 0.15);
  EXPECT_LT(sweep, 0.15);
}

}  // namespace
}  // namespace adse::sim
