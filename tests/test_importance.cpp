#include "ml/importance.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/require.hpp"

namespace adse::ml {
namespace {

/// y = 50*x0 + 5*x1, x2 irrelevant.
Dataset weighted_dataset(int n, std::uint64_t seed) {
  Dataset d;
  d.feature_names = {"strong", "weak", "noise"};
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row{rng.uniform_real(0, 10), rng.uniform_real(0, 10),
                            rng.uniform_real(0, 10)};
    const double y = 50 * row[0] + 5 * row[1];
    d.add_row(std::move(row), y);
  }
  return d;
}

TEST(Importance, RanksFeaturesByContribution) {
  const Dataset d = weighted_dataset(1500, 3);
  DecisionTreeRegressor tree;
  tree.fit(d);
  Rng rng(1);
  const auto result = permutation_importance(tree, d, rng);
  EXPECT_GT(result.percent[0], result.percent[1]);
  EXPECT_GT(result.percent[1], result.percent[2]);
  EXPECT_GT(result.percent[0], 60.0);
  EXPECT_LT(result.percent[2], 5.0);
}

TEST(Importance, PercentagesSumToHundred) {
  const Dataset d = weighted_dataset(800, 5);
  DecisionTreeRegressor tree;
  tree.fit(d);
  Rng rng(2);
  const auto result = permutation_importance(tree, d, rng);
  const double total =
      std::accumulate(result.percent.begin(), result.percent.end(), 0.0);
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(Importance, BaselineMaeIsZeroOnTrainingData) {
  const Dataset d = weighted_dataset(400, 7);
  DecisionTreeRegressor tree;
  tree.fit(d);
  Rng rng(3);
  const auto result = permutation_importance(tree, d, rng);
  EXPECT_NEAR(result.baseline_mae, 0.0, 1e-9);  // unconstrained tree memorises
}

TEST(Importance, DataUnchangedAfterComputation) {
  const Dataset d = weighted_dataset(300, 11);
  Dataset copy = d;
  DecisionTreeRegressor tree;
  tree.fit(d);
  Rng rng(4);
  (void)permutation_importance(tree, copy, rng);
  EXPECT_EQ(copy.x, d.x);
}

TEST(Importance, DeterministicForSeed) {
  const Dataset d = weighted_dataset(500, 13);
  DecisionTreeRegressor tree;
  tree.fit(d);
  Rng a(5), b(5);
  const auto r1 = permutation_importance(tree, d, a);
  const auto r2 = permutation_importance(tree, d, b);
  EXPECT_EQ(r1.percent, r2.percent);
}

TEST(Importance, RepeatsOptionValidated) {
  const Dataset d = weighted_dataset(100, 17);
  DecisionTreeRegressor tree;
  tree.fit(d);
  Rng rng(6);
  ImportanceOptions opts;
  opts.repeats = 0;
  EXPECT_THROW(permutation_importance(tree, d, rng, opts), InvariantError);
}

TEST(Importance, RankFeaturesDescending) {
  ImportanceResult r;
  r.percent = {10.0, 50.0, 0.0, 40.0};
  const auto order = rank_features(r);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 0, 2}));
}

TEST(Importance, ConstantModelHasNoImportance) {
  Dataset d;
  d.feature_names = {"a"};
  for (int i = 0; i < 50; ++i) d.add_row({static_cast<double>(i)}, 7.0);
  DecisionTreeRegressor tree;
  tree.fit(d);
  Rng rng(8);
  const auto result = permutation_importance(tree, d, rng);
  EXPECT_DOUBLE_EQ(result.percent[0], 0.0);
}

TEST(Importance, FeatureCountMismatchThrows) {
  const Dataset d = weighted_dataset(100, 19);
  DecisionTreeRegressor tree;
  tree.fit(d);
  Dataset wrong;
  wrong.feature_names = {"only"};
  wrong.add_row({1.0}, 2.0);
  Rng rng(9);
  EXPECT_THROW(permutation_importance(tree, wrong, rng), InvariantError);
}

}  // namespace
}  // namespace adse::ml
