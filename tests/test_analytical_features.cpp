/// \file test_analytical_features.cpp
/// The shared analytical extractor verified on fixed tiny traces with
/// hand-computed per-resource throughput values, plus the structural
/// contracts the Oracle and the fused surrogate both lean on: min_cycles is
/// the max of the named bounds, the summary answers fetch/line queries for
/// every loop-buffer and line-width without re-decoding, and the extractor
/// agrees exactly with check::reference_replay on the anchor configs.

#include "analysis/analytical_features.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/check.hpp"
#include "common/require.hpp"
#include "config/baselines.hpp"
#include "kernels/kernel_builder.hpp"
#include "kernels/workloads.hpp"

namespace adse::analysis {
namespace {

using config::CpuConfig;
using kernels::gp;

isa::Program straight_line(int n, isa::InstrGroup group) {
  kernels::KernelBuilder b("hand");
  for (int i = 0; i < n; ++i) b.op(group, gp(1), gp(2));
  return b.take();
}

// ---- hand-computed per-resource bounds -------------------------------------

TEST(AnalyticalFeatures, SixIntOpsOnBaseline) {
  // ThunderX2 baseline: commit = dispatch = frontend = 4 wide, 3 mixed
  // (INT/FP/branch) ports, 9 issue ports total, 32 B fetch blocks.
  const TraceSummary summary =
      summarize_trace(straight_line(6, isa::InstrGroup::kInt));
  const AnalyticalFeatures f =
      analyze(summary, config::thunderx2_baseline());

  EXPECT_EQ(f.commit_bound, 2u);     // ceil(6/4)
  EXPECT_EQ(f.dispatch_bound, 2u);   // ceil(6/4)
  EXPECT_EQ(f.frontend_bound, 2u);   // ceil(6/4)
  EXPECT_EQ(f.fetch_bytes, 24u);     // 6 x 4 B, nothing loop-streamed
  EXPECT_EQ(f.fetch_bound, 1u);      // ceil(24/32)
  EXPECT_EQ(f.port_group_bound, 2u); // ceil(6 INT / 3 mixed ports)
  EXPECT_EQ(f.port_scalar_bound, 2u);
  EXPECT_EQ(f.port_all_bound, 1u);   // ceil(6 / 9 ports)
  EXPECT_EQ(f.port_ls_bound, 0u);    // no memory ops
  EXPECT_EQ(f.port_vecpred_bound, 0u);
  EXPECT_EQ(f.store_send_bound, 0u);
  EXPECT_EQ(f.min_cycles, 2u);

  // Serial replay: 6 x (overhead + 1-cycle INT latency), no memory walk.
  EXPECT_EQ(f.serial_exec_cycles,
            6u * static_cast<std::uint64_t>(kSerialPerOpOverhead + 1));
  EXPECT_EQ(f.memory_lines, 0u);
  EXPECT_EQ(f.max_cycles, 6u * (kSerialPerOpOverhead + 1) +
                              static_cast<std::uint64_t>(kSerialSlackCycles));
}

TEST(AnalyticalFeatures, StoreDrainBounds) {
  // 5 stores of 8 B. Baseline drains 1 store/cycle (send), 3 requests/cycle
  // and 16 B/cycle of store bandwidth.
  kernels::KernelBuilder b("stores");
  for (int i = 0; i < 5; ++i) {
    b.store(0x1000 + 8 * static_cast<std::uint64_t>(i), 8, gp(1), gp(2));
  }
  const TraceSummary summary = summarize_trace(b.take());
  EXPECT_EQ(summary.stores(), 5u);
  EXPECT_EQ(summary.stored_bytes, 40u);

  const AnalyticalFeatures f =
      analyze(summary, config::thunderx2_baseline());
  EXPECT_EQ(f.store_send_bound, 5u);      // ceil(5/1)
  EXPECT_EQ(f.store_request_bound, 2u);   // ceil(5/3)
  EXPECT_EQ(f.store_bandwidth_bound, 3u); // ceil(40/16)
  EXPECT_EQ(f.min_cycles, 5u);
}

TEST(AnalyticalFeatures, MinCyclesIsTheMaxOfEveryNamedBound) {
  const CpuConfig cfg = config::thunderx2_baseline();
  for (kernels::App app : kernels::all_apps()) {
    const TraceSummary summary = summarize_trace(
        kernels::build_app(app, cfg.core.vector_length_bits));
    const AnalyticalFeatures f = analyze(summary, cfg);
    const std::uint64_t bounds[] = {
        f.commit_bound,     f.dispatch_bound,      f.frontend_bound,
        f.fetch_bound,      f.port_group_bound,    f.port_all_bound,
        f.port_ls_bound,    f.port_vecpred_bound,  f.port_scalar_bound,
        f.store_send_bound, f.store_request_bound, f.store_bandwidth_bound};
    const std::uint64_t expected =
        std::max<std::uint64_t>(1, *std::max_element(std::begin(bounds),
                                                     std::end(bounds)));
    EXPECT_EQ(f.min_cycles, expected) << kernels::app_slug(app);
    EXPECT_LE(f.min_cycles, f.max_cycles) << kernels::app_slug(app);
  }
}

// ---- the config-independent summary ----------------------------------------

TEST(TraceSummary, StreamabilityTableAnswersEveryLoopBufferSize) {
  // 3 iterations of a 3-op body: 9 ops, 6 of which (iterations 2 and 3)
  // stream once the body fits the buffer.
  kernels::KernelBuilder b("loop");
  b.begin_loop();
  for (int iter = 0; iter < 3; ++iter) {
    b.begin_iteration();
    b.op(isa::InstrGroup::kInt, gp(1));
    b.op(isa::InstrGroup::kInt, gp(2));
    b.branch();
    b.end_iteration();
  }
  b.end_loop();
  const TraceSummary summary = summarize_trace(b.take());

  EXPECT_EQ(summary.total_ops, 9u);
  EXPECT_EQ(summary.streamable_ops(2), 0u);   // body spills a 2-entry buffer
  EXPECT_EQ(summary.streamable_ops(3), 6u);   // exact fit
  EXPECT_EQ(summary.streamable_ops(512), 6u); // larger buffers gain nothing
  EXPECT_EQ(summary.fetch_bytes(2), 9u * isa::kInstrBytes);
  EXPECT_EQ(summary.fetch_bytes(32), 3u * isa::kInstrBytes);
}

TEST(TraceSummary, LineWalkTotalsPerWidth) {
  // One 8 B load at 0x103c straddles a 32 B and a 64 B boundary (0x1040)
  // but sits inside one 128 B (and 256 B) line.
  kernels::KernelBuilder b("straddle");
  b.load(gp(1), 0x103c, 8, gp(2));
  const TraceSummary summary = summarize_trace(b.take());
  EXPECT_EQ(summary.lines_for(32), 2u);
  EXPECT_EQ(summary.lines_for(64), 2u);
  EXPECT_EQ(summary.lines_for(128), 1u);
  EXPECT_EQ(summary.lines_for(256), 1u);
  EXPECT_THROW(summary.lines_for(16), InvariantError);
}

TEST(TraceSummary, EmptyProgramThrows) {
  EXPECT_THROW(summarize_trace(isa::Program{}), InvariantError);
}

// ---- agreement with the Oracle (one implementation, two consumers) ---------

TEST(AnalyticalFeatures, MatchesReferenceReplayOnAnchorConfigs) {
  for (const CpuConfig& cfg :
       {config::thunderx2_baseline(), config::minimal_viable(),
        config::big_future(), config::a64fx_like()}) {
    for (kernels::App app : kernels::all_apps()) {
      const isa::Program trace =
          kernels::build_app(app, cfg.core.vector_length_bits);
      const TraceSummary summary = summarize_trace(trace);
      const AnalyticalFeatures f = analyze(summary, cfg);
      const check::Oracle oracle = check::reference_replay(trace, cfg);
      EXPECT_EQ(f.min_cycles, oracle.min_cycles)
          << cfg.name << "/" << kernels::app_slug(app);
      EXPECT_EQ(f.max_cycles, oracle.max_cycles)
          << cfg.name << "/" << kernels::app_slug(app);
      EXPECT_EQ(f.fetch_bytes, oracle.fetch_bytes)
          << cfg.name << "/" << kernels::app_slug(app);
      EXPECT_EQ(summary.total_ops, oracle.total_ops);
      EXPECT_EQ(summary.sve_ops, oracle.sve_ops);
    }
  }
}

// ---- the ML row -------------------------------------------------------------

TEST(AnalyticalFeatures, MlRowMatchesNamesAndIsFinite) {
  const TraceSummary summary = summarize_trace(
      kernels::build_app(kernels::App::kStream, 256));
  const AnalyticalFeatures f =
      analyze(summary, config::thunderx2_baseline());
  const std::vector<double> row = f.ml_features();
  EXPECT_EQ(row.size(), AnalyticalFeatures::ml_feature_names().size());
  for (const double v : row) EXPECT_TRUE(std::isfinite(v));
  // Fractions partition sanity: every mix share lives in [0, 1].
  for (const double frac :
       {f.sve_fraction, f.load_fraction, f.store_fraction, f.vec_fraction,
        f.branch_fraction, f.fpdiv_fraction}) {
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
  }
}

}  // namespace
}  // namespace adse::analysis
