#include <gtest/gtest.h>

#include "common/require.hpp"
#include "config/baselines.hpp"
#include "isa/ports.hpp"
#include "sim/simulation.hpp"

namespace adse {
namespace {

TEST(PortLayout, PaperDefaultHasNinePorts) {
  const auto& layout = isa::PortLayout::paper_default();
  EXPECT_EQ(layout.num_ports(), 9);
  EXPECT_EQ(layout.ports_for(isa::InstrGroup::kLoad).size(), 3u);
  EXPECT_EQ(layout.ports_for(isa::InstrGroup::kVec).size(), 2u);
  // dedicated predicate port + 2 vector fallbacks
  EXPECT_EQ(layout.ports_for(isa::InstrGroup::kPred).size(), 3u);
  EXPECT_EQ(layout.ports_for(isa::InstrGroup::kFp).size(), 3u);
}

TEST(PortLayout, PortIndicesAreDisjointAndDense) {
  const isa::PortLayout layout(2, 3, 1, 4);
  EXPECT_EQ(layout.num_ports(), 10);
  std::set<std::uint8_t> seen;
  for (auto g : {isa::InstrGroup::kLoad, isa::InstrGroup::kVec,
                 isa::InstrGroup::kInt}) {
    for (std::uint8_t p : layout.ports_for(g)) {
      EXPECT_LT(p, 10);
      EXPECT_TRUE(seen.insert(p).second) << "port reused across groups";
    }
  }
  // Dedicated predicate port remains.
  EXPECT_EQ(seen.size(), 9u);
}

TEST(PortLayout, ZeroPredPortsFallBackToVector) {
  const isa::PortLayout layout(1, 2, 0, 1);
  const auto pred_ports = layout.ports_for(isa::InstrGroup::kPred);
  EXPECT_EQ(pred_ports.size(), 2u);  // the vector pipes
  EXPECT_EQ(pred_ports[0], layout.ports_for(isa::InstrGroup::kVec)[0]);
}

TEST(PortLayout, RejectsDegenerateLayouts) {
  EXPECT_THROW(isa::PortLayout(0, 1, 0, 1), InvariantError);
  EXPECT_THROW(isa::PortLayout(1, 0, 0, 1), InvariantError);
  EXPECT_THROW(isa::PortLayout(1, 1, 0, 0), InvariantError);
  EXPECT_THROW(isa::PortLayout(32, 32, 32, 32), InvariantError);
}

TEST(BackendSpec, DefaultsMatchPaperConstants) {
  config::BackendSpec spec;
  EXPECT_EQ(spec.reservation_station_size, config::kReservationStationSize);
  EXPECT_EQ(spec.dispatch_width, config::kDispatchWidth);
  EXPECT_EQ(spec.ls_ports + spec.vec_ports + spec.pred_ports + spec.mix_ports,
            9);
}

TEST(BackendSpec, ValidationCatchesBadValues) {
  config::CpuConfig c = config::thunderx2_baseline();
  c.backend.reservation_station_size = 2;
  EXPECT_THROW(config::validate(c), InvariantError);
  c = config::thunderx2_baseline();
  c.backend.dispatch_width = 0;
  EXPECT_THROW(config::validate(c), InvariantError);
  c = config::thunderx2_baseline();
  c.backend.vec_ports = 0;
  EXPECT_THROW(config::validate(c), InvariantError);
}

TEST(BackendSpec, MoreVectorPortsSpeedUpMiniBude) {
  config::CpuConfig one = config::thunderx2_baseline();
  one.backend.vec_ports = 1;
  config::CpuConfig four = config::thunderx2_baseline();
  four.backend.vec_ports = 4;
  EXPECT_GT(sim::simulate_app(one, kernels::App::kMiniBude).cycles(),
            sim::simulate_app(four, kernels::App::kMiniBude).cycles());
}

TEST(BackendSpec, WiderDispatchLiftsIpcCeiling) {
  config::CpuConfig narrow = config::thunderx2_baseline();
  narrow.core.frontend_width = 16;
  narrow.core.commit_width = 16;
  narrow.backend.dispatch_width = 2;
  config::CpuConfig wide = narrow;
  wide.backend.dispatch_width = 8;
  const auto n = sim::simulate_app(narrow, kernels::App::kMiniSweep);
  const auto w = sim::simulate_app(wide, kernels::App::kMiniSweep);
  EXPECT_LE(n.core.ipc(), 2.01);
  EXPECT_GT(w.core.ipc(), n.core.ipc());
}

TEST(BackendSpec, SmallReservationStationThrottles) {
  config::CpuConfig tiny = config::thunderx2_baseline();
  tiny.backend.reservation_station_size = 4;
  const auto small = sim::simulate_app(tiny, kernels::App::kStream);
  const auto normal =
      sim::simulate_app(config::thunderx2_baseline(), kernels::App::kStream);
  EXPECT_GT(small.cycles(), normal.cycles());
  EXPECT_GT(small.core.stall_rs_full, 0u);
}

TEST(BackendSpec, DefaultBackendUnchangedByAblationSupport) {
  // The canonical reproduction path must be bit-identical to the fixed
  // backend: a default-constructed BackendSpec gives the same cycles as
  // before the backend became configurable (regression anchor).
  const auto a = sim::simulate_app(config::thunderx2_baseline(),
                                   kernels::App::kTeaLeaf);
  config::CpuConfig c = config::thunderx2_baseline();
  c.backend = config::BackendSpec{};
  const auto b = sim::simulate_app(c, kernels::App::kTeaLeaf);
  EXPECT_EQ(a.cycles(), b.cycles());
}

}  // namespace
}  // namespace adse
