#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "ml/metrics.hpp"

namespace adse::ml {
namespace {

Dataset from_function(int n, int features, std::uint64_t seed,
                      double (*f)(const std::vector<double>&)) {
  Dataset d;
  for (int i = 0; i < features; ++i) d.feature_names.push_back("x" + std::to_string(i));
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row;
    for (int j = 0; j < features; ++j) row.push_back(rng.uniform_real(0, 10));
    const double y = f(row);
    d.add_row(std::move(row), y);
  }
  return d;
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTreeRegressor tree;
  EXPECT_FALSE(tree.fitted());
  EXPECT_THROW(tree.predict({1.0}), InvariantError);
}

TEST(DecisionTree, FitEmptyThrows) {
  DecisionTreeRegressor tree;
  Dataset d;
  d.feature_names = {"a"};
  EXPECT_THROW(tree.fit(d), InvariantError);
}

TEST(DecisionTree, ConstantTargetIsOneLeaf) {
  Dataset d;
  d.feature_names = {"a"};
  for (int i = 0; i < 20; ++i) d.add_row({static_cast<double>(i)}, 5.0);
  DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_DOUBLE_EQ(tree.predict({-100.0}), 5.0);
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  Dataset d;
  d.feature_names = {"a"};
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i);
    d.add_row({x}, x < 25 ? 1.0 : 9.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_EQ(tree.num_leaves(), 2u);
  EXPECT_DOUBLE_EQ(tree.predict({10.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict({40.0}), 9.0);
  // Threshold is the midpoint between 24 and 25.
  EXPECT_DOUBLE_EQ(tree.predict({24.4}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict({24.6}), 9.0);
}

TEST(DecisionTree, UnconstrainedTreeMemorisesTraining) {
  // §V-C: no depth/leaf constraints -> training predictions are exact for
  // distinct feature rows.
  const Dataset d = from_function(300, 3, 5, [](const std::vector<double>& x) {
    return x[0] * 7 + x[1] * x[1] - 3 * x[2];
  });
  DecisionTreeRegressor tree;
  tree.fit(d);
  const auto pred = tree.predict_all(d);
  for (std::size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_NEAR(pred[i], d.y[i], 1e-9);
  }
  EXPECT_EQ(tree.num_leaves(), d.num_rows());
}

TEST(DecisionTree, GeneralisesSmoothFunction) {
  auto f = [](const std::vector<double>& x) { return 3.0 * x[0] + x[1]; };
  const Dataset train = from_function(2000, 2, 11, f);
  const Dataset test = from_function(200, 2, 13, f);
  DecisionTreeRegressor tree;
  tree.fit(train);
  EXPECT_GT(r2(test.y, tree.predict_all(test)), 0.95);
}

TEST(DecisionTree, LearnsInteraction) {
  // XOR-like interaction no single split captures.
  auto f = [](const std::vector<double>& x) {
    return ((x[0] > 5) != (x[1] > 5)) ? 10.0 : 0.0;
  };
  const Dataset train = from_function(1500, 2, 17, f);
  const Dataset test = from_function(200, 2, 19, f);
  DecisionTreeRegressor tree;
  tree.fit(train);
  EXPECT_GT(r2(test.y, tree.predict_all(test)), 0.9);
}

TEST(DecisionTree, MaxDepthRespected) {
  const Dataset d = from_function(500, 2, 23, [](const std::vector<double>& x) {
    return x[0] * x[1];
  });
  TreeOptions opts;
  opts.max_depth = 3;
  DecisionTreeRegressor tree(opts);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 3);
  EXPECT_LE(tree.num_leaves(), 8u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Dataset d = from_function(200, 2, 29, [](const std::vector<double>& x) {
    return x[0];
  });
  TreeOptions opts;
  opts.min_samples_leaf = 20;
  DecisionTreeRegressor tree(opts);
  tree.fit(d);
  EXPECT_LE(tree.num_leaves(), 10u);  // 200 / 20
}

TEST(DecisionTree, MinSamplesSplitRespected) {
  const Dataset d = from_function(100, 1, 31, [](const std::vector<double>& x) {
    return x[0];
  });
  TreeOptions opts;
  opts.min_samples_split = 60;
  DecisionTreeRegressor tree(opts);
  tree.fit(d);
  // Root (100) splits once; children (<60) cannot split again.
  EXPECT_LE(tree.num_leaves(), 2u);
}

TEST(DecisionTree, InvalidOptionsThrow) {
  TreeOptions bad;
  bad.min_samples_split = 1;
  EXPECT_THROW(DecisionTreeRegressor{bad}, InvariantError);
  TreeOptions bad2;
  bad2.min_samples_leaf = 0;
  EXPECT_THROW(DecisionTreeRegressor{bad2}, InvariantError);
}

TEST(DecisionTree, WrongPredictWidthThrows) {
  const Dataset d = from_function(50, 2, 37, [](const std::vector<double>& x) {
    return x[0];
  });
  DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_THROW(tree.predict({1.0}), InvariantError);
  EXPECT_THROW(tree.predict({1.0, 2.0, 3.0}), InvariantError);
}

TEST(DecisionTree, ImpurityImportanceFindsRelevantFeature) {
  // y depends only on x1; x0 is noise.
  const Dataset d = from_function(800, 2, 41, [](const std::vector<double>& x) {
    return 100.0 * x[1];
  });
  DecisionTreeRegressor tree;
  tree.fit(d);
  const auto importance = tree.impurity_importance();
  EXPECT_GT(importance[1], 0.95);
  EXPECT_LT(importance[0], 0.05);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(DecisionTree, MaeCriterionUsesMedianLeaves) {
  Dataset d;
  d.feature_names = {"a"};
  // One outlier: the median-leaf prediction ignores it, the mean would not.
  for (double y : {1.0, 1.0, 1.0, 1.0, 101.0}) d.add_row({1.0}, y);
  TreeOptions opts;
  opts.criterion = Criterion::kMae;
  DecisionTreeRegressor tree(opts);
  tree.fit(d);  // constant feature: single leaf
  EXPECT_DOUBLE_EQ(tree.predict({1.0}), 1.0);
}

TEST(DecisionTree, MaeCriterionLearnsStep) {
  Dataset d;
  d.feature_names = {"a"};
  for (int i = 0; i < 60; ++i) {
    const double x = static_cast<double>(i);
    d.add_row({x}, x < 30 ? 2.0 : 8.0);
  }
  TreeOptions opts;
  opts.criterion = Criterion::kMae;
  DecisionTreeRegressor tree(opts);
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict({5.0}), 2.0);
  EXPECT_DOUBLE_EQ(tree.predict({45.0}), 8.0);
}

TEST(DecisionTree, MseAndMaeAgreeOnCleanData) {
  auto f = [](const std::vector<double>& x) { return x[0] > 5 ? 1.0 : 0.0; };
  const Dataset d = from_function(400, 1, 43, f);
  TreeOptions mae_opts;
  mae_opts.criterion = Criterion::kMae;
  DecisionTreeRegressor mse_tree, mae_tree(mae_opts);
  mse_tree.fit(d);
  mae_tree.fit(d);
  const Dataset test = from_function(100, 1, 47, f);
  EXPECT_EQ(mse_tree.predict_all(test), mae_tree.predict_all(test));
}

TEST(DecisionTree, MaxFeaturesSubsampling) {
  const Dataset d = from_function(300, 5, 53, [](const std::vector<double>& x) {
    return x[0] + x[1];
  });
  TreeOptions opts;
  opts.max_features = 2;
  opts.seed = 9;
  DecisionTreeRegressor tree(opts);
  tree.fit(d);
  EXPECT_TRUE(tree.fitted());
  // Training fit still near-perfect (deep tree can recover).
  EXPECT_GT(r2(d.y, tree.predict_all(d)), 0.95);
}

TEST(DecisionTree, DumpShowsFeatureNames) {
  const Dataset d = from_function(100, 2, 59, [](const std::vector<double>& x) {
    return x[1] > 5 ? 1.0 : 0.0;
  });
  DecisionTreeRegressor tree;
  tree.fit(d);
  const std::string dump = tree.dump(2, d.feature_names);
  EXPECT_NE(dump.find("x1 <="), std::string::npos);
}

TEST(DecisionTree, DeterministicFit) {
  const Dataset d = from_function(500, 3, 61, [](const std::vector<double>& x) {
    return x[0] * x[1] - x[2];
  });
  DecisionTreeRegressor a, b;
  a.fit(d);
  b.fit(d);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.predict_all(d), b.predict_all(d));
}

TEST(DecisionTree, SingleRowDataset) {
  Dataset d;
  d.feature_names = {"a"};
  d.add_row({1.0}, 42.0);
  DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict({99.0}), 42.0);
}

TEST(DecisionTree, DuplicateFeatureValuesDifferentTargets) {
  Dataset d;
  d.feature_names = {"a"};
  for (int i = 0; i < 10; ++i) d.add_row({1.0}, static_cast<double>(i));
  DecisionTreeRegressor tree;
  tree.fit(d);  // cannot split a constant feature
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({1.0}), 4.5);
}

TEST(DecisionTree, DeepChainDoesNotOverflowStack) {
  // Monotone data with min_samples_leaf=1 can chain; the builder must use an
  // explicit stack. 20k rows would crash a naive recursive implementation if
  // it degenerated; here we simply verify a large fit completes.
  Dataset d;
  d.feature_names = {"a"};
  Rng rng(67);
  for (int i = 0; i < 20000; ++i) {
    d.add_row({static_cast<double>(i)}, rng.uniform_real(0, 1));
  }
  DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_EQ(tree.num_leaves(), 20000u);
}

}  // namespace
}  // namespace adse::ml
