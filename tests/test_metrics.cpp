#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"

namespace adse::ml {
namespace {

TEST(Metrics, Mae) {
  EXPECT_DOUBLE_EQ(mae({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(mae({0, 0}, {1, -3}), 2.0);
}

TEST(Metrics, Rmse) {
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rmse({5}, {5}), 0.0);
}

TEST(Metrics, RmseDominatesForOutliers) {
  const std::vector<double> truth{0, 0, 0, 0};
  const std::vector<double> pred{0, 0, 0, 8};
  EXPECT_GT(rmse(truth, pred), mae(truth, pred));
}

TEST(Metrics, Mape) {
  EXPECT_DOUBLE_EQ(mape({100, 200}, {110, 180}), (0.1 + 0.1) / 2);
  EXPECT_THROW(mape({0.0}, {1.0}), InvariantError);
}

TEST(Metrics, MeanAccuracyPercent) {
  // The paper's 93.38% metric: 100 - mean relative error %.
  EXPECT_NEAR(mean_accuracy_percent({100, 100}, {90, 110}), 90.0, 1e-9);
  EXPECT_DOUBLE_EQ(mean_accuracy_percent({50}, {50}), 100.0);
}

TEST(Metrics, R2PerfectAndBaseline) {
  EXPECT_DOUBLE_EQ(r2({1, 2, 3}, {1, 2, 3}), 1.0);
  // Predicting the mean scores 0.
  EXPECT_NEAR(r2({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
  // Worse than the mean is negative.
  EXPECT_LT(r2({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(Metrics, R2ConstantTruth) {
  EXPECT_DOUBLE_EQ(r2({4, 4}, {4, 4}), 1.0);
  EXPECT_DOUBLE_EQ(r2({4, 4}, {5, 5}), 0.0);
}

TEST(Metrics, WithinToleranceCurveIsMonotone) {
  const std::vector<double> truth{100, 100, 100, 100};
  const std::vector<double> pred{100.5, 103, 115, 160};
  const auto curve =
      within_tolerance_curve(truth, pred, {0.01, 0.05, 0.25, 0.75});
  EXPECT_DOUBLE_EQ(curve[0], 0.25);
  EXPECT_DOUBLE_EQ(curve[1], 0.5);
  EXPECT_DOUBLE_EQ(curve[2], 0.75);
  EXPECT_DOUBLE_EQ(curve[3], 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(mae({1.0}, {1.0, 2.0}), InvariantError);
  EXPECT_THROW(r2({}, {}), InvariantError);
}

}  // namespace
}  // namespace adse::ml
