#include <gtest/gtest.h>

#include "isa/microop.hpp"
#include "isa/ports.hpp"
#include "isa/program.hpp"
#include "kernels/kernel_builder.hpp"

namespace adse::isa {
namespace {

using kernels::fp;
using kernels::gp;
using kernels::pred;

TEST(MicroOp, VectorOpOnZRegistersIsSve) {
  MicroOp op;
  op.group = InstrGroup::kVec;
  op.dest = fp(0);
  op.srcs = {fp(1), fp(2), kNoReg};
  EXPECT_TRUE(op.is_sve());
}

TEST(MicroOp, ScalarFpIsNotSve) {
  MicroOp op;
  op.group = InstrGroup::kFp;
  op.dest = fp(0);
  op.srcs = {fp(1), fp(2), kNoReg};
  EXPECT_FALSE(op.is_sve());
}

TEST(MicroOp, PredicateOpsAreSve) {
  MicroOp op;
  op.group = InstrGroup::kPred;
  op.dest = pred(0);
  EXPECT_TRUE(op.is_sve());
}

TEST(MicroOp, WideLoadIntoZIsSve) {
  MicroOp op;
  op.group = InstrGroup::kLoad;
  op.dest = fp(0);
  op.mem_size_bytes = 32;  // 256-bit vector load
  EXPECT_TRUE(op.is_sve());
}

TEST(MicroOp, ScalarLoadIntoZIsNotSve) {
  MicroOp op;
  op.group = InstrGroup::kLoad;
  op.dest = fp(0);
  op.mem_size_bytes = 8;  // one double
  EXPECT_FALSE(op.is_sve());
}

TEST(MicroOp, IntegerOpIsNotSve) {
  MicroOp op;
  op.group = InstrGroup::kInt;
  op.dest = gp(1);
  op.srcs = {gp(2), kNoReg, kNoReg};
  EXPECT_FALSE(op.is_sve());
}

TEST(MicroOp, MemoryClassification) {
  MicroOp load;
  load.group = InstrGroup::kLoad;
  MicroOp store;
  store.group = InstrGroup::kStore;
  MicroOp alu;
  alu.group = InstrGroup::kInt;
  EXPECT_TRUE(load.is_memory());
  EXPECT_TRUE(store.is_memory());
  EXPECT_FALSE(alu.is_memory());
}

TEST(Latency, AllGroupsPositive) {
  for (int g = 0; g < kNumInstrGroups; ++g) {
    EXPECT_GE(execution_latency(static_cast<InstrGroup>(g)), 1);
  }
}

TEST(Latency, RelativeOrdering) {
  EXPECT_LT(execution_latency(InstrGroup::kInt),
            execution_latency(InstrGroup::kFp));
  EXPECT_LT(execution_latency(InstrGroup::kFp),
            execution_latency(InstrGroup::kFpDiv));
  EXPECT_EQ(execution_latency(InstrGroup::kLoad), 1);  // AGU only
}

TEST(Ports, EveryGroupHasAtLeastOnePort) {
  for (int g = 0; g < kNumInstrGroups; ++g) {
    EXPECT_FALSE(ports_for(static_cast<InstrGroup>(g)).empty());
  }
}

TEST(Ports, LoadStoreExclusivePorts) {
  for (std::uint8_t p : ports_for(InstrGroup::kLoad)) {
    EXPECT_TRUE(p == kPortLs0 || p == kPortLs1 || p == kPortLs2);
    EXPECT_FALSE(port_supports(p, InstrGroup::kInt));
    EXPECT_FALSE(port_supports(p, InstrGroup::kVec));
  }
  EXPECT_EQ(ports_for(InstrGroup::kLoad).size(), 3u);
}

TEST(Ports, VectorOnTwoPorts) {
  EXPECT_EQ(ports_for(InstrGroup::kVec).size(), 2u);
}

TEST(Ports, PredicateHasDedicatedPlusVectorFallback) {
  const auto ports = ports_for(InstrGroup::kPred);
  EXPECT_EQ(ports.front(), kPortPred0);
  EXPECT_EQ(ports.size(), 3u);
}

TEST(Ports, MixedPortsServeScalarAndBranch) {
  for (auto group : {InstrGroup::kInt, InstrGroup::kFp, InstrGroup::kBranch}) {
    EXPECT_EQ(ports_for(group).size(), 3u);
    EXPECT_TRUE(port_supports(kPortMix0, group));
  }
}

TEST(Ports, PortSupportsNegativeCases) {
  EXPECT_FALSE(port_supports(kPortVec0, InstrGroup::kLoad));
  EXPECT_FALSE(port_supports(kPortMix0, InstrGroup::kVec));
}

TEST(GroupName, AllDistinct) {
  std::set<std::string> names;
  for (int g = 0; g < kNumInstrGroups; ++g) {
    names.insert(group_name(static_cast<InstrGroup>(g)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumInstrGroups));
}

TEST(TraceStats, CountsGroupsAndBytes) {
  kernels::KernelBuilder b("t");
  b.load(fp(0), 0x1000, 32, gp(1));                // SVE load
  b.op(InstrGroup::kVec, fp(1), fp(0));            // SVE op
  b.store(0x2000, 32, fp(1), gp(1));               // SVE store
  b.op(InstrGroup::kInt, gp(1), gp(1));
  b.branch();
  const Program program = b.take();
  const TraceStats stats = compute_stats(program);
  EXPECT_EQ(stats.total, 5u);
  EXPECT_EQ(stats.memory_ops, 2u);
  EXPECT_EQ(stats.loaded_bytes, 32u);
  EXPECT_EQ(stats.stored_bytes, 32u);
  EXPECT_EQ(stats.sve_ops, 3u);
  EXPECT_NEAR(stats.sve_fraction(), 0.6, 1e-12);
  EXPECT_EQ(stats.by_group[static_cast<int>(InstrGroup::kBranch)], 1u);
}

TEST(TraceStats, EmptyTrace) {
  Program p;
  const TraceStats stats = compute_stats(p);
  EXPECT_EQ(stats.total, 0u);
  EXPECT_EQ(stats.sve_fraction(), 0.0);
}

}  // namespace
}  // namespace adse::isa
