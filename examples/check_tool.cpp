/// \file check_tool.cpp
/// Driver for the adse::check verification harness.
///
///   ./examples/check_tool --fuzz 32 --seed 1            # fuzz, exit 1 on bugs
///   ./examples/check_tool --fuzz 512 --repro-dir repros # CI extended run
///   ./examples/check_tool --repro repros/repro-1-7.txt  # replay a finding
///   ./examples/check_tool --mc-fuzz 32 --seed 1         # coherence fuzzing
///   ./examples/check_tool --mc-fuzz 8 --mc-inject drop_inval_ack  # self-test
///   ./examples/check_tool --mc-repro repros/mc-repro-1-3.txt      # replay
///   ./examples/check_tool --calibrate                   # fit proxy constants
///
/// Exit codes: 0 = clean (or a replayed repro no longer fires), 1 = at least
/// one violation (or a replayed repro still fires), 77 = skipped because the
/// gating environment variable (--skip-unless-env) is unset — the ctest
/// SKIP_RETURN_CODE convention.
///
/// `--calibrate` runs the DiffTune-style constant fit (analysis/calibrate):
/// coordinate descent of the hardware proxy's latency/bandwidth constants
/// against black-box cycle observations, reporting fitted vs reference
/// values and the residual divergence. `--configs N`, `--sweeps N`, `--seed`
/// shape the fit; `--out FILE` also writes the report to a file.
///
/// `--mc-fuzz N` runs the multicore coherence fuzzer: N random (cores,
/// directory scheme/size, VL, app, interleaving) points simulated on the
/// tiled MSI machine with every conservation law armed. `--mc-inject BUG`
/// plants a deliberate protocol defect (drop_inval_ack, leak_sharer_bit,
/// skip_downgrade) so the harness can prove it catches real bugs; findings
/// are ddmin-shrunk and written as adse-mc-repro v1 files that `--mc-repro`
/// replays. `--mc-max-cores` bounds the sampled tile count (default from
/// ADSE_CORES).
///
/// The tool uses a hermetic evaluation service (no persistent result store):
/// a cached result would bypass the in-run structural checks and could mask
/// the very bugs the fuzzer exists to find.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/calibrate.hpp"
#include "check/fuzzer.hpp"
#include "check/mc_fuzzer.hpp"
#include "check/repro.hpp"
#include "common/stopwatch.hpp"
#include "config/serialize.hpp"
#include "eval/service.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--fuzz N] [--seed S] [--chains L] [--threads T]\n"
      "          [--repro-dir DIR] [--no-shrink] [--verbose]\n"
      "          [--repro FILE] [--skip-unless-env VAR]\n"
      "          [--mc-fuzz N] [--mc-inject BUG] [--mc-max-cores C]\n"
      "          [--mc-repro FILE]\n"
      "          [--calibrate] [--configs N] [--sweeps N] [--out FILE]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adse;

  check::FuzzOptions options;
  check::McFuzzOptions mc_options = check::McFuzzOptions::from_env();
  bool mc_fuzz = false;
  std::string repro_file;
  std::string mc_repro_file;
  int threads = 0;
  bool verbose = false;
  bool calibrate = false;
  analysis::CalibrationOptions calibration;
  std::string calibration_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fuzz") {
      options.iterations = std::atoi(next());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--chains") {
      options.chain_points = std::atoi(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--repro-dir") {
      options.repro_dir = next();
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--repro") {
      repro_file = next();
    } else if (arg == "--mc-fuzz") {
      mc_fuzz = true;
      mc_options.iterations = std::atoi(next());
    } else if (arg == "--mc-inject") {
      mc_options.inject = coherence::injected_bug_from_name(next());
    } else if (arg == "--mc-max-cores") {
      mc_options.max_cores = std::atoi(next());
    } else if (arg == "--mc-repro") {
      mc_repro_file = next();
    } else if (arg == "--calibrate") {
      calibrate = true;
    } else if (arg == "--configs") {
      calibration.num_configs = std::atoi(next());
    } else if (arg == "--sweeps") {
      calibration.sweeps = std::atoi(next());
    } else if (arg == "--out") {
      calibration_out = next();
    } else if (arg == "--skip-unless-env") {
      const char* gate = std::getenv(next());
      if (gate == nullptr || gate[0] == '\0') {
        std::printf("skipped (gating environment variable unset)\n");
        return 77;
      }
    } else {
      return usage(argv[0]);
    }
  }
  options.verbose = verbose;
  mc_options.seed = options.seed;
  mc_options.shrink = options.shrink;
  mc_options.repro_dir = options.repro_dir;
  mc_options.verbose = verbose;

  if (!mc_repro_file.empty()) {
    const check::McViolation violation = check::load_mc_repro(mc_repro_file);
    std::printf("replaying %s (app %s, %d cores, %s directory, seed %llu, "
                "iteration %llu, inject %s)\n",
                mc_repro_file.c_str(),
                kernels::mc_app_slug(violation.point.app).c_str(),
                violation.point.num_cores,
                config::directory_scheme_name(violation.point.directory_scheme)
                    .c_str(),
                static_cast<unsigned long long>(violation.seed),
                static_cast<unsigned long long>(violation.iteration),
                coherence::injected_bug_name(violation.inject).c_str());
    const bool fires = check::mc_reproduces(violation);
    std::printf("%s: %s\n", mc_repro_file.c_str(),
                fires ? "STILL REPRODUCES" : "does not reproduce (fixed)");
    return fires ? 1 : 0;
  }

  if (mc_fuzz) {
    Stopwatch mc_watch;
    const check::McFuzzReport report = check::mc_fuzz(mc_options);
    const double seconds = mc_watch.millis() / 1000.0;
    std::printf("check_tool: %s in %.1f s (seed %llu, max %d cores, "
                "inject %s)\n",
                report.summary().c_str(), seconds,
                static_cast<unsigned long long>(mc_options.seed),
                mc_options.max_cores,
                coherence::injected_bug_name(mc_options.inject).c_str());
    for (const check::McViolation& v : report.violations) {
      std::printf("  iteration %llu app %s cores %d scheme %s entries %d: %s\n",
                  static_cast<unsigned long long>(v.iteration),
                  kernels::mc_app_slug(v.point.app).c_str(), v.point.num_cores,
                  config::directory_scheme_name(v.point.directory_scheme)
                      .c_str(),
                  v.point.directory_entries, v.message.c_str());
      if (!v.repro_path.empty()) {
        std::printf("        repro: %s\n", v.repro_path.c_str());
      }
    }
    return report.ok() ? 0 : 1;
  }

  if (calibrate) {
    calibration.seed = options.seed;
    Stopwatch watch;
    const analysis::CalibrationReport report = analysis::calibrate(calibration);
    const double seconds = watch.millis() / 1000.0;
    std::printf("== proxy-constant calibration (%d configs, %d sweeps, "
                "seed %llu) ==\n\n%s",
                calibration.num_configs, calibration.sweeps,
                static_cast<unsigned long long>(calibration.seed),
                report.render().c_str());
    std::printf("fit took %.1f s\n", seconds);
    if (!calibration_out.empty()) {
      std::ofstream out(calibration_out);
      out << report.render();
      std::printf("wrote %s\n", calibration_out.c_str());
    }
    return 0;
  }

  // Hermetic service: in-memory memo only (see file comment).
  eval::EvalOptions eval_options;
  eval_options.threads = threads;
  eval::EvalService service(eval_options);

  if (!repro_file.empty()) {
    const check::Violation violation = check::load_repro(repro_file);
    std::printf("replaying %s (%s, app %s, seed %llu, iteration %llu)\n",
                repro_file.c_str(),
                violation.kind == check::Violation::Kind::kInvariant
                    ? "invariant"
                    : "monotonicity",
                kernels::app_slug(violation.app).c_str(),
                static_cast<unsigned long long>(violation.seed),
                static_cast<unsigned long long>(violation.iteration));
    if (verbose) {
      std::printf("%s\n", config::to_yaml(violation.config).c_str());
    }
    const bool fires = check::reproduces(service, violation);
    std::printf("%s: %s\n", repro_file.c_str(),
                fires ? "STILL REPRODUCES" : "does not reproduce (fixed)");
    return fires ? 1 : 0;
  }

  Stopwatch watch;
  const check::FuzzReport report = check::fuzz(service, options);
  const double seconds = watch.millis() / 1000.0;
  std::printf("check_tool: %s in %.1f s on %zu threads (seed %llu)\n",
              report.summary().c_str(), seconds, service.threads(),
              static_cast<unsigned long long>(options.seed));
  for (const check::Violation& v : report.violations) {
    std::printf("  [%s] iteration %llu app %s: %s\n",
                v.kind == check::Violation::Kind::kInvariant ? "invariant"
                                                             : "monotonicity",
                static_cast<unsigned long long>(v.iteration),
                kernels::app_slug(v.app).c_str(), v.message.c_str());
    if (!v.repro_path.empty()) {
      std::printf("        repro: %s\n", v.repro_path.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
