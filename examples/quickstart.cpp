/// \file quickstart.cpp
/// Minimal tour of the public API: build a CPU configuration, run the four
/// HPC workloads through the simulator, and print SimEng-style statistics.
///
///   ./examples/quickstart            # ThunderX2 baseline
///   ./examples/quickstart a64fx      # A64FX-flavoured configuration

#include <cstdio>
#include <string>

#include <vector>

#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "common/text_table.hpp"
#include "config/baselines.hpp"
#include "config/serialize.hpp"
#include "eval/service.hpp"
#include "kernels/workloads.hpp"
#include "sim/stats_report.hpp"

int main(int argc, char** argv) {
  using namespace adse;

  config::CpuConfig cpu = config::thunderx2_baseline();
  if (argc > 1) {
    const std::string which = argv[1];
    if (which == "a64fx") {
      cpu = config::a64fx_like();
    } else if (which == "big") {
      cpu = config::big_future();
    } else if (which == "minimal") {
      cpu = config::minimal_viable();
    } else {
      std::fprintf(stderr, "unknown config '%s' (try a64fx|big|minimal)\n",
                   which.c_str());
      return 1;
    }
  }

  std::printf("Configuration (SimEng-style YAML):\n%s\n",
              config::to_yaml(cpu).c_str());

  // All four apps go through the shared evaluation service as one batch —
  // parallel across ADSE_THREADS workers, and served from the persistent
  // result store on a re-run.
  eval::EvalService& service = eval::EvalService::shared();
  std::vector<eval::EvalRequest> requests;
  for (kernels::App app : kernels::all_apps()) requests.push_back({cpu, app});
  Stopwatch watch;
  const auto results = service.evaluate(requests);
  const double total_ms = watch.millis();

  TextTable table({"Application", "µops", "Cycles", "IPC", "SVE %", "L1 hit %",
                   "RAM reqs"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::RunResult& result = results[i].run;
    table.add_row({
        kernels::app_name(requests[i].app),
        format_grouped(static_cast<long long>(result.core.retired)),
        format_grouped(static_cast<long long>(result.core.cycles)),
        format_fixed(result.core.ipc(), 2),
        format_fixed(result.core.sve_fraction() * 100.0, 1),
        format_fixed(result.mem.l1_hit_rate() * 100.0, 1),
        format_grouped(static_cast<long long>(result.mem.ram_requests)),
    });
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("evaluated %zu runs in %.1f ms on %zu threads\n\n",
              results.size(), total_ms, service.threads());

  if (argc > 2 && std::string(argv[2]) == "--stats") {
    // Full SimEng-style statistics block for the last app, plus the eval
    // service's cache decomposition.
    const sim::RunResult detail =
        service.evaluate_one({cpu, kernels::App::kMiniSweep}).run;
    std::printf("%s\n", sim::render_stats(detail).c_str());
    std::printf("%s\n", service.cache_table().c_str());
  }
  return 0;
}
