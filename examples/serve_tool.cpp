/// \file serve_tool.cpp
/// The eval daemon as a command-line tool, plus the matching client verbs —
/// the shape the paper's campaign infrastructure ran in: one long-lived
/// evaluation service per node, any number of client processes sharing its
/// memo, result store, and (with --routed) fused surrogate.
///
///   serve_tool serve [--routed]    run the daemon (drains on SIGTERM)
///   serve_tool ping                health-check a running daemon
///   serve_tool stats               print the daemon's metrics snapshot
///   serve_tool drain               ask the daemon to drain and exit
///   serve_tool eval <app> [n]      evaluate n random configs (default 4)
///
/// Socket path and worker count come from ADSE_SERVE_SOCKET /
/// ADSE_SERVE_WORKERS (see README).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "config/param_space.hpp"
#include "kernels/workloads.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

using namespace adse;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: serve_tool serve [--routed] | ping | stats | drain | "
               "eval <app> [n]\n");
  return 2;
}

int run_daemon(bool routed) {
  serve::DaemonOptions options = serve::DaemonOptions::from_env();
  options.routed = routed;
  options.handle_sigterm = true;
  options.verbose = true;
  serve::Daemon daemon(options);
  daemon.start();
  std::printf("serving on %s (%zu workers%s); SIGTERM drains\n",
              daemon.socket_path().c_str(), daemon.workers(),
              routed ? ", routed" : "");
  std::fflush(stdout);
  daemon.wait();
  return 0;
}

int run_eval(const std::string& app_name, int n) {
  kernels::App app = kernels::App::kStream;
  bool found = false;
  for (int a = 0; a < kernels::kNumApps; ++a) {
    if (app_name == kernels::app_slug(static_cast<kernels::App>(a))) {
      app = static_cast<kernels::App>(a);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown app '%s'\n", app_name.c_str());
    return 2;
  }
  const config::ParameterSpace space;
  Rng rng(campaign_seed() + 1000u);
  std::vector<eval::EvalRequest> requests;
  for (int i = 0; i < n; ++i) {
    config::CpuConfig cfg = space.sample(rng);
    cfg.name = "serve-eval-" + std::to_string(i);
    requests.push_back({cfg, app});
  }
  serve::EvalClient client(serve::ClientOptions::from_env());
  const auto responses = client.evaluate(requests);
  int failures = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& r = responses[i];
    if (r.ok()) {
      std::printf("%s %s: %llu cycles (%s)\n", app_name.c_str(),
                  requests[i].config.name.c_str(),
                  static_cast<unsigned long long>(r.cycles()),
                  r.source == eval::ResultSource::kBackend ? "fresh"
                                                           : "cached");
    } else {
      std::printf("%s %s: %s (%s)\n", app_name.c_str(),
                  requests[i].config.name.c_str(),
                  eval::status_name(r.status), r.error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string verb = argv[1];
  if (verb == "serve") {
    const bool routed = argc > 2 && std::strcmp(argv[2], "--routed") == 0;
    return run_daemon(routed);
  }
  if (verb == "ping") {
    serve::EvalClient client(serve::ClientOptions::from_env());
    const bool ok = client.ping();
    std::printf("%s\n", ok ? "pong" : "unreachable");
    return ok ? 0 : 1;
  }
  if (verb == "stats") {
    serve::EvalClient client(serve::ClientOptions::from_env());
    const std::string snapshot = client.stats();
    if (snapshot.empty()) {
      std::fprintf(stderr, "unreachable\n");
      return 1;
    }
    std::printf("%s\n", snapshot.c_str());
    return 0;
  }
  if (verb == "drain") {
    serve::EvalClient client(serve::ClientOptions::from_env());
    const bool ok = client.drain_server();
    std::printf("%s\n", ok ? "draining" : "unreachable");
    return ok ? 0 : 1;
  }
  if (verb == "eval" && argc >= 3) {
    const int n = argc > 3 ? std::atoi(argv[3]) : 4;
    return run_eval(argv[2], n > 0 ? n : 4);
  }
  return usage();
}
