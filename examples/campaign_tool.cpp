/// \file campaign_tool.cpp
/// Command-line campaign runner — the C++ analogue of the paper artifact's
/// `xci_launcher.sh` + `collect_data.py`: generates uniformly random CPU
/// configurations, runs all four benchmarks on each, and appends rows to a
/// CSV dataset.
///
///   ./examples/campaign_tool out.csv 250 [seed] [vl]
///
/// The resulting CSV (30 feature columns + 4 cycle columns) feeds the
/// surrogate training in bench/ and examples/surrogate_explorer.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/campaign.hpp"
#include "common/env.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "eval/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace adse;

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <out.csv> <num_configs> [seed] [vector_length]\n",
                 argv[0]);
    return 1;
  }

  campaign::CampaignSpec spec;
  spec.label = "cli";
  spec.num_configs = static_cast<int>(parse_int(argv[2]));
  spec.seed = argc > 3 ? static_cast<std::uint64_t>(parse_int(argv[3]))
                       : campaign_seed();
  if (argc > 4) spec.fixed_vector_length = static_cast<int>(parse_int(argv[4]));
  // spec.threads stays 0: the shared eval service supplies the ADSE_THREADS
  // default and serves repeated configurations from its result store.

  Stopwatch watch;
  const auto result =
      campaign::run_campaign(spec, eval::EvalService::shared());
  write_csv(argv[1], result.table);
  std::printf("wrote %zu rows x %zu columns to %s in %.1fs\n",
              result.table.num_rows(), result.table.num_cols(), argv[1],
              watch.seconds());

  // Campaign health: the unified metrics snapshot (cache decomposition,
  // pool gauges, batch latency) plus the Chrome trace if ADSE_TRACE_FILE
  // is set.
  eval::EvalService::shared().stats();
  std::printf("\n%s", obs::Registry::global().render_text().c_str());
  obs::Tracer::global().flush();
  return 0;
}
