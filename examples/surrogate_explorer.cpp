/// \file surrogate_explorer.cpp
/// The paper's full workflow in one program: collect a (small) campaign,
/// train the per-application decision-tree surrogates, report their accuracy
/// and feature importances, then use a surrogate the way a designer would —
/// asking "what if" questions about hypothetical CPUs without re-simulating.
///
///   ./examples/surrogate_explorer            # 200-config demo campaign
///   ADSE_CONFIGS=2000 ./examples/surrogate_explorer

#include <cstdio>

#include "analysis/surrogate_eval.hpp"
#include "campaign/campaign.hpp"
#include "common/env.hpp"
#include "common/strings.hpp"
#include "common/text_table.hpp"
#include "config/baselines.hpp"
#include "eval/service.hpp"

int main() {
  using namespace adse;

  // Everything below — the campaign rows and the spot-check simulations —
  // flows through the shared evaluation service (ADSE_THREADS, persistent
  // result store), so re-running the explorer is nearly simulation-free.
  eval::EvalService& service = eval::EvalService::shared();

  campaign::CampaignSpec spec;
  spec.label = "explorer";
  spec.num_configs = static_cast<int>(env_int("ADSE_CONFIGS", 200));
  spec.seed = campaign_seed();
  std::printf("Collecting a %d-configuration campaign (T1/T2)...\n",
              spec.num_configs);
  const auto data = campaign::load_or_run(spec, service);

  std::printf("\nTraining one decision-tree surrogate per application "
              "(T3, §V-C)...\n\n");
  std::vector<analysis::SurrogateEvaluation> evals;
  for (kernels::App app : kernels::all_apps()) {
    evals.push_back(
        analysis::evaluate_surrogate(app, data.dataset(app), spec.seed));
  }
  std::printf("%s\n", analysis::render_accuracy(evals).c_str());
  std::printf("Top-5 importances (T4, §VI-B):\n%s",
              analysis::render_importance(evals, 5).c_str());

  // --- what-if exploration --------------------------------------------------
  // Predict hypothetical designs through the surrogate, then check one
  // against the real simulator (the surrogate's entire point: ~10^5 times
  // faster to query than to simulate).
  std::printf("What-if: MiniBude cycles predicted by the surrogate\n");
  const auto& bude = evals[1];
  TextTable table({"design", "surrogate prediction", "simulated truth"});
  for (const auto& [name, cfg] :
       {std::pair{"thunderx2", config::thunderx2_baseline()},
        std::pair{"a64fx-like", config::a64fx_like()},
        std::pair{"big-future", config::big_future()}}) {
    const auto features = config::feature_vector(cfg);
    const double predicted =
        bude.model.predict({features.begin(), features.end()});
    const auto truth =
        service.evaluate_one({cfg, kernels::App::kMiniBude}).cycles();
    table.add_row({name, format_grouped(static_cast<long long>(predicted)),
                   format_grouped(static_cast<long long>(truth))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Predictions for designs far outside the sampled space — like "
              "big-future's\n2048-bit vectors — show the extrapolation limits "
              "§VII warns about.)\n");
  return 0;
}
