/// \file design_sweep.cpp
/// Sweeps one microarchitectural parameter at a time on top of the
/// ThunderX2 baseline and reports the resulting cycle counts — the manual
/// version of what the paper's ML model does over the whole space at once.
///
///   ./examples/design_sweep                 # sweep VL, ROB and FP registers
///   ./examples/design_sweep rob_size        # sweep one named parameter

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/text_table.hpp"
#include "config/baselines.hpp"
#include "config/param_space.hpp"
#include "eval/service.hpp"
#include "kernels/workloads.hpp"

namespace {

using namespace adse;

/// Applies `value` for `id` on top of the baseline, fixing up dependent
/// parameters so the result stays a valid design.
config::CpuConfig with_param(config::ParamId id, double value) {
  config::CpuConfig cpu = config::thunderx2_baseline();
  auto features = config::feature_vector(cpu);
  features[static_cast<std::size_t>(id)] = value;
  // Dependent constraint: bandwidth must hold one full vector.
  const double vl_bytes =
      features[static_cast<std::size_t>(config::ParamId::kVectorLength)] / 8.0;
  auto& load_bw = features[static_cast<std::size_t>(config::ParamId::kLoadBandwidth)];
  auto& store_bw = features[static_cast<std::size_t>(config::ParamId::kStoreBandwidth)];
  while (load_bw < vl_bytes) load_bw *= 2;
  while (store_bw < vl_bytes) store_bw *= 2;
  config::CpuConfig out = config::config_from_features(features);
  out.name = config::param_name(id) + "=" + format_fixed(value, 0);
  return out;
}

void sweep(config::ParamId id, const std::vector<double>& values) {
  std::printf("Sweep of %s (all other parameters: ThunderX2 baseline)\n",
              config::param_name(id).c_str());
  TextTable table({config::param_name(id), "STREAM", "MiniBude", "TeaLeaf",
                   "MiniSweep"});

  // One batch per sweep: every (value, app) point goes through the shared
  // evaluation service, which parallelises the runs and memoises repeats.
  const auto apps = kernels::all_apps();
  std::vector<eval::EvalRequest> requests;
  for (double v : values) {
    const config::CpuConfig cpu = with_param(id, v);
    for (kernels::App app : apps) requests.push_back({cpu, app});
  }
  const auto results = eval::EvalService::shared().evaluate(requests);

  for (std::size_t i = 0; i < values.size(); ++i) {
    std::vector<std::string> row{format_fixed(values[i], 0)};
    for (std::size_t a = 0; a < apps.size(); ++a) {
      row.push_back(format_grouped(static_cast<long long>(
          results[i * apps.size() + a].cycles())));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const config::ParameterSpace space;

  if (argc > 1) {
    const config::ParamId id = config::param_from_name(argv[1]);
    const auto& spec = space.spec(id);
    std::vector<double> values;
    if (spec.kind == config::StepKind::kReal) {
      for (int i = 0; i <= 6; ++i) {
        values.push_back(spec.min + (spec.max - spec.min) * i / 6.0);
      }
    } else {
      const auto all = spec.values();
      // At most ~10 evenly spaced points of the range.
      const std::size_t stride = std::max<std::size_t>(1, all.size() / 10);
      for (std::size_t i = 0; i < all.size(); i += stride) values.push_back(all[i]);
      if (values.back() != all.back()) values.push_back(all.back());
    }
    sweep(id, values);
    return 0;
  }

  sweep(config::ParamId::kVectorLength, {128, 256, 512, 1024, 2048});
  sweep(config::ParamId::kRobSize, {8, 32, 64, 128, 152, 256, 512});
  sweep(config::ParamId::kFpRegisters, {38, 64, 96, 144, 256, 512});
  sweep(config::ParamId::kL2Size, {64, 128, 256, 512, 1024, 4096});
  return 0;
}
